"""Trace-order memory classification.

Walks a sealed trace once through the cache hierarchy (private L1D for the
scalar side, banked shared L2HN for everything) and labels every memory
reference with the level that served it. The result — a
:class:`ClassifiedTrace` — is **independent of the latency and bandwidth
knobs**, so one classification pass serves an entire Figure-3/Figure-5
sweep; only the (cheap) timing stage reruns per sweep point.

Hierarchy rules (single core+VPU agent):

* scalar loads/stores: L1D → L2 → DRAM; write-allocate, write-back.
  A dirty L1 victim is written back into L2 (full line, no DRAM fill);
  a dirty L2 victim becomes one DRAM write transaction.
* vector loads/stores bypass L1 and access the L2HN directly (the decoupled
  VPU has its own memory path in Vitruvius). Element addresses of one
  instruction are coalesced into line requests (configurable for gathers).
* unit-stride vector stores that cover whole lines allocate without a DRAM
  fill (streaming-store behaviour); gather/scatter and strided store misses
  fetch the line first.
* lines resident in L1 that the VPU touches are recalled (home-node
  coherence): invalidated in L1 and, if dirty, written back into L2 first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.config import SdvConfig
from repro.errors import TraceError
from repro.trace.events import (
    TraceBuffer,
    VMemPattern,
    VOpClass,
)
from repro.util.mathx import log2_int
from repro.util.units import LINE_BYTES

LINE_SHIFT = log2_int(LINE_BYTES)


class AccessLevel(enum.IntEnum):
    """Which level served a memory reference."""

    L1 = 0
    L2 = 1
    DRAM = 2


# Row dtype of the columnar classified trace consumed by the fast engine.
ROW_DTYPE = np.dtype(
    [
        ("kind", np.uint8),        # 0 scalar block, 1 vector arith, 2 vector mem,
                                   # 3 barrier
        ("n_alu", np.int64),       # scalar block ALU ops
        ("n_mem", np.int64),       # scalar block memory ops
        ("l1_hits", np.int64),
        ("l2_hits", np.int64),
        ("dram_reads", np.int64),
        ("dram_writes", np.int64),  # writebacks + store traffic to DRAM
        ("vl", np.int32),
        ("active", np.int32),
        ("opclass", np.uint8),      # VOpClass ordinal (255 for scalar rows)
        ("pattern", np.uint8),      # VMemPattern ordinal (255 if N/A)
        ("n_line_reqs", np.int64),  # vector mem: line requests after coalescing
        ("mlp_hint", np.int64),
        ("is_write", np.uint8),
        ("dep", np.int64),          # producing record index (-1 none)
        ("scalar_dest", np.uint8),  # instruction writes a scalar register
        ("pf_dram_reads", np.int64),  # prefetcher-issued DRAM fills (non-
                                      # blocking: bandwidth, not stall)
    ]
)

KIND_SCALAR, KIND_VARITH, KIND_VMEM, KIND_BARRIER = 0, 1, 2, 3

_OPCLASS_ID = {c: i for i, c in enumerate(VOpClass)}
_PATTERN_ID = {p: i for i, p in enumerate(VMemPattern)}


@dataclass
class ClassifiedTrace:
    """Per-record classified view of a trace.

    ``rows`` is a structured array with one row per trace record (columnar,
    for the fast engine); ``levels`` holds, per record, the
    :class:`AccessLevel` of each line/element request in order (for the
    event engine). ``trace`` is the original buffer.
    """

    rows: np.ndarray
    levels: list[np.ndarray | None]
    trace: TraceBuffer
    config: SdvConfig

    # aggregate convenience
    totals: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.levels) != self.rows.shape[0]:
            raise TraceError("levels list misaligned with rows")
        if not self.totals:
            r = self.rows
            self.totals = {
                "l1_hits": int(r["l1_hits"].sum()),
                "l2_hits": int(r["l2_hits"].sum()),
                "dram_reads": int(r["dram_reads"].sum()),
                "dram_writes": int(r["dram_writes"].sum()),
                "scalar_mem_ops": int(r["n_mem"].sum()),
                "vector_line_reqs": int(r["n_line_reqs"].sum()),
                "pf_dram_reads": int(r["pf_dram_reads"].sum()),
            }

    @property
    def dram_transactions(self) -> int:
        return (self.totals["dram_reads"] + self.totals["dram_writes"]
                + self.totals.get("pf_dram_reads", 0))

    @property
    def dram_bytes(self) -> int:
        return self.dram_transactions * LINE_BYTES


def _coalesce_lines(addrs: np.ndarray, pattern: VMemPattern,
                    coalesce_gathers: bool) -> np.ndarray:
    """Element byte addresses of one vector instruction → line requests.

    Unit-stride/strided accesses always coalesce adjacent same-line elements
    (the memory unit buffers a line's worth). Indexed accesses coalesce only
    when the hardware supports it (``coalesce_gathers``), and then only
    duplicate lines anywhere in the instruction (CAM over the open requests),
    preserving first-touch order.
    """
    lines = addrs >> LINE_SHIFT
    if lines.size == 0:
        return lines
    if pattern is VMemPattern.INDEXED and not coalesce_gathers:
        return lines
    if pattern is VMemPattern.INDEXED:
        # unique, stable order of first occurrence
        _, first_idx = np.unique(lines, return_index=True)
        return lines[np.sort(first_idx)]
    # unit/strided: drop consecutive duplicates
    keep = np.empty(lines.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    return lines[keep]


def _coalesced_spans(cols, coalesce_gathers: bool
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Coalesce every vector-mem record's arena span at once.

    Returns ``(vm_mask, coal_lines, c_off)``: a per-record bool mask of
    vector-mem records, the concatenated coalesced line requests, and
    ``(n+1,)`` offsets into them (empty spans for non-vmem records). The
    per-record results match :func:`_coalesce_lines` exactly; doing the
    whole arena in a handful of NumPy passes avoids a Python round-trip
    per record.
    """
    from repro.trace.events import NO_ID, OPCLASS_ID, PATTERN_ID, REC_VECTOR

    mem_id = OPCLASS_ID[VOpClass.MEM]
    idx_id = PATTERN_ID[VMemPattern.INDEXED]
    off = cols.addr_off
    lines_all = cols.addrs >> LINE_SHIFT
    A = lines_all.shape[0]
    vm_mask = (cols.kind == REC_VECTOR) & (cols.opclass == mem_id)
    keep = np.zeros(A, dtype=bool)

    def span_mask(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        # +1/-1 edge histogram; bincount beats np.add.at by a wide margin
        edges = (np.bincount(lo, minlength=A + 1)
                 - np.bincount(hi, minlength=A + 1))
        return np.cumsum(edges[:A]) > 0

    seq_idx = np.flatnonzero(vm_mask & (cols.pattern != idx_id))
    if seq_idx.size:
        lo, hi = off[seq_idx], off[seq_idx + 1]
        diff = np.empty(A, dtype=bool)
        diff[0] = True
        np.not_equal(lines_all[1:], lines_all[:-1], out=diff[1:])
        keep |= span_mask(lo, hi) & diff
        keep[lo[hi > lo]] = True  # first element of a span always survives
    idx_idx = np.flatnonzero(vm_mask & (cols.pattern == idx_id))
    if idx_idx.size:
        lo, hi = off[idx_idx], off[idx_idx + 1]
        if not coalesce_gathers:
            keep |= span_mask(lo, hi)
        else:
            # unique-first-occurrence per span, all spans at once: make the
            # (span, line) pair a single sortable key
            lens = hi - lo
            total = int(lens.sum())
            pos = np.repeat(lo, lens) + (
                np.arange(total, dtype=np.int64)
                - np.repeat(np.cumsum(lens) - lens, lens)
            )
            sub = lines_all[pos]
            span_id = np.repeat(np.arange(lens.shape[0], dtype=np.int64),
                                lens)
            m = int(sub.max()) + 1 if total else 1
            # first occurrence per (span, line) key: a stable (radix)
            # argsort puts the smallest original index first in each key
            # group — np.unique(return_index) would mergesort instead
            key = span_id * m + sub
            order = np.argsort(key, kind="stable")
            ks = key[order]
            grp = np.ones(ks.shape[0], dtype=bool)
            np.not_equal(ks[1:], ks[:-1], out=grp[1:])
            keep[pos[order[grp]]] = True

    coal_idx = np.flatnonzero(keep)
    coal_lines = lines_all[coal_idx]
    c_off = np.searchsorted(coal_idx, off).astype(np.int64)
    return vm_mask, coal_lines, c_off


def _prepare_rows(cols, config: SdvConfig
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                             np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized prep shared by both classification engines.

    Coalesces every vector-mem span and fills every knob-independent row
    field — everything except the hit/miss counters and levels the cache
    walk itself produces. Returns
    ``(rows, vm_mask, coal_lines, c_off, span_len, is_scalar)``.
    """
    from repro.trace.events import REC_BARRIER, REC_SCALAR, REC_VECTOR

    n = cols.n
    vm_mask, coal_lines, c_off = _coalesced_spans(
        cols, config.vpu.coalesce_gathers)
    off = cols.addr_off
    span_len = off[1:] - off[:-1]
    is_scalar = cols.kind == REC_SCALAR

    rows = np.zeros(n, dtype=ROW_DTYPE)
    rows["kind"] = np.where(
        cols.kind == REC_BARRIER, KIND_BARRIER,
        np.where(cols.kind == REC_VECTOR,
                 np.where(vm_mask, KIND_VMEM, KIND_VARITH),
                 KIND_SCALAR))
    rows["n_alu"] = cols.n_alu
    rows["n_mem"] = np.where(is_scalar, span_len, 0)
    rows["mlp_hint"] = cols.mlp
    rows["vl"] = cols.vl
    rows["active"] = cols.active
    rows["opclass"] = cols.opclass
    rows["pattern"] = cols.pattern
    rows["is_write"] = cols.is_write
    rows["dep"] = cols.dep
    rows["scalar_dest"] = cols.scalar_dest
    rows["n_line_reqs"] = c_off[1:] - c_off[:-1]
    return rows, vm_mask, coal_lines, c_off, span_len, is_scalar


def classify_trace(trace: TraceBuffer, config: SdvConfig) -> ClassifiedTrace:
    """Classify every memory reference of ``trace`` against fresh caches.

    Consumes the trace's columns directly (zero-copy). The cache walk
    below inlines the exact hit/LRU/victim decisions of
    :class:`SetAssocCache` and :class:`L2HomeNode` — minus their stats and
    directory bookkeeping, which classification never exposes — because a
    method call per line request dominates the sweep wall-clock otherwise;
    ``tests/memory`` pin the two implementations against each other. This
    sequential walker is the reference spec; the array-backed engine in
    :mod:`repro.memory.classify_fast` reproduces it bit-for-bit.
    """
    if not trace.sealed:
        raise TraceError("classify_trace requires a sealed trace")
    config.validate()
    from repro.obs.engine_stats import get_engine_stats, \
        introspection_enabled

    if introspection_enabled():
        get_engine_stats().count("classify.walk_runs")

    cols = trace.cols
    n = cols.n
    unit_id = _PATTERN_ID[VMemPattern.UNIT]
    prefetch_depth = config.core.l1_prefetch_depth

    # ---- vectorized prep: coalescing + bulk row fields -------------------
    rows, vm_mask, coal_lines, c_off, span_len, is_scalar = _prepare_rows(
        cols, config)
    off = cols.addr_off

    levels_per_record: list[np.ndarray | None] = [None] * n

    # only records that touch memory interact with the cache state
    work = np.flatnonzero((is_scalar & (span_len > 0)) | vm_mask)
    w_scalar = is_scalar[work].tolist()
    w_lo = off[work].tolist()
    w_hi = off[work + 1].tolist()
    w_clo = c_off[work].tolist()
    w_chi = c_off[work + 1].tolist()
    w_write = cols.is_write[work].tolist()
    w_fill = (cols.pattern[work] != unit_id).tolist()  # fill_on_store_miss
    lines_all = cols.addrs >> LINE_SHIFT
    writes_all = cols.writes

    l1_hits_a = np.zeros(n, dtype=np.int64)
    l2_hits_a = np.zeros(n, dtype=np.int64)
    dram_reads_a = np.zeros(n, dtype=np.int64)
    dram_writes_a = np.zeros(n, dtype=np.int64)
    pf_a = np.zeros(n, dtype=np.int64)

    # ---- cache state, same geometry/policy as SetAssocCache/L2HomeNode --
    # LRU sets as insertion-ordered dicts: oldest key first (the eviction
    # victim), most-recent last; a hit moves to the end via del+reinsert.
    # Same true-LRU policy as SetAssocCache, with O(1) membership and
    # reordering instead of list scans.
    l1_ways = config.core.l1d_ways
    n_sets1 = config.core.l1d_bytes // (l1_ways * LINE_BYTES)
    mask1 = n_sets1 - 1
    l1_tags: list[dict[int, None]] = [{} for _ in range(n_sets1)]
    l1_dirty: list[set[int]] = [set() for _ in range(n_sets1)]

    l2cfg = config.l2
    bank_mask = l2cfg.banks - 1
    bank_bits = log2_int(l2cfg.banks)
    l2_ways = l2cfg.ways
    n_sets2 = l2cfg.bank_bytes // (l2_ways * LINE_BYTES)
    mask2 = n_sets2 - 1
    # flat [bank * n_sets2 + set] indexing across all banks
    l2_tags: list[dict[int, None]] = [{} for _ in range(l2cfg.banks * n_sets2)]
    l2_dirty: list[set[int]] = [set() for _ in range(l2cfg.banks * n_sets2)]

    L1, L2, DRAM = (int(AccessLevel.L1), int(AccessLevel.L2),
                    int(AccessLevel.DRAM))

    def l2_ref(line: int, write: bool) -> tuple[bool, bool]:
        """L2 access; returns (hit, dirty_victim_evicted)."""
        local = line >> bank_bits
        si = (line & bank_mask) * n_sets2 + (local & mask2)
        tags = l2_tags[si]
        if local in tags:
            del tags[local]
            tags[local] = None
            if write:
                l2_dirty[si].add(local)
            return True, False
        tags[local] = None
        if write:
            l2_dirty[si].add(local)
        if len(tags) > l2_ways:
            victim = next(iter(tags))
            del tags[victim]
            d = l2_dirty[si]
            if victim in d:
                d.discard(victim)
                return False, True
        return False, False

    def l2_writeback(line: int) -> bool:
        """Dirty install from L1 (no fill); returns dirty_victim_evicted."""
        local = line >> bank_bits
        si = (line & bank_mask) * n_sets2 + (local & mask2)
        tags = l2_tags[si]
        d = l2_dirty[si]
        if local in tags:
            del tags[local]
            tags[local] = None
            d.add(local)
            return False
        tags[local] = None
        d.add(local)
        if len(tags) > l2_ways:
            victim = next(iter(tags))
            del tags[victim]
            if victim in d:
                d.discard(victim)
                return True
        return False

    # ---- the walk --------------------------------------------------------
    for w, i in enumerate(work.tolist()):
        if w_scalar[w]:
            lo, hi = w_lo[w], w_hi[w]
            lines = lines_all[lo:hi].tolist()
            wr = writes_all[lo:hi].tolist()
            m = hi - lo
            lv = np.empty(m, dtype=np.uint8)
            dram_writes = dram_reads = pf_reads = l1h = l2h = 0
            for j in range(m):
                line = lines[j]
                # L1 access (write-allocate, write-back, true LRU)
                si = line & mask1
                tags = l1_tags[si]
                if line in tags:
                    del tags[line]
                    tags[line] = None
                    if wr[j]:
                        l1_dirty[si].add(line)
                    lv[j] = L1
                    l1h += 1
                    continue
                tags[line] = None
                if wr[j]:
                    l1_dirty[si].add(line)
                if len(tags) > l1_ways:
                    victim = next(iter(tags))
                    del tags[victim]
                    d = l1_dirty[si]
                    if victim in d:
                        d.discard(victim)
                        if l2_writeback(victim):
                            dram_writes += 1
                hit2, dirty_victim = l2_ref(line, False)
                if dirty_victim:
                    dram_writes += 1
                if hit2:
                    lv[j] = L2
                    l2h += 1
                else:
                    lv[j] = DRAM
                    dram_reads += 1
                # next-N-line stream prefetch: fill L1 (and L2 on the way)
                # with the following lines; prefetch fills consume DRAM
                # bandwidth but, being non-blocking, add no demand stall
                for p_ in range(1, prefetch_depth + 1):
                    pline = line + p_
                    psi = pline & mask1
                    ptags = l1_tags[psi]
                    if pline in ptags:
                        continue
                    ph2, pdirty = l2_ref(pline, False)
                    if pdirty:
                        dram_writes += 1
                    if not ph2:
                        pf_reads += 1
                    ptags[pline] = None
                    if len(ptags) > l1_ways:
                        victim = next(iter(ptags))
                        del ptags[victim]
                        d = l1_dirty[psi]
                        if victim in d:
                            d.discard(victim)
                            if l2_writeback(victim):
                                dram_writes += 1
            l1_hits_a[i] = l1h
            l2_hits_a[i] = l2h
            dram_reads_a[i] = dram_reads
            dram_writes_a[i] = dram_writes
            pf_a[i] = pf_reads
            levels_per_record[i] = lv
            continue

        # vector memory record
        lines = coal_lines[w_clo[w]:w_chi[w]].tolist()
        is_write = w_write[w]
        # unit-stride stores allocate whole lines without fetching
        no_fill_store = is_write and not w_fill[w]
        lv = np.empty(len(lines), dtype=np.uint8)
        dram_writes = dram_reads = l2h = 0
        for j, line in enumerate(lines):
            # home-node recall of lines the scalar side holds
            si = line & mask1
            tags = l1_tags[si]
            if line in tags:
                del tags[line]
                d = l1_dirty[si]
                if line in d:
                    d.discard(line)
                    if l2_writeback(line):
                        dram_writes += 1
            # L2 access, inlined (== l2_ref): this is the hottest loop of
            # a sweep, and the call overhead alone is measurable
            local = line >> bank_bits
            si2 = (line & bank_mask) * n_sets2 + (local & mask2)
            tags2 = l2_tags[si2]
            if local in tags2:
                del tags2[local]
                tags2[local] = None
                if is_write:
                    l2_dirty[si2].add(local)
                lv[j] = L2
                l2h += 1
                continue
            tags2[local] = None
            if is_write:
                l2_dirty[si2].add(local)
            if len(tags2) > l2_ways:
                victim = next(iter(tags2))
                del tags2[victim]
                d2 = l2_dirty[si2]
                if victim in d2:
                    d2.discard(victim)
                    dram_writes += 1
            if no_fill_store:
                lv[j] = L2
                l2h += 1
            else:
                lv[j] = DRAM
                dram_reads += 1
        l2_hits_a[i] = l2h
        dram_reads_a[i] = dram_reads
        dram_writes_a[i] = dram_writes
        levels_per_record[i] = lv

    rows["l1_hits"] = l1_hits_a
    rows["l2_hits"] = l2_hits_a
    rows["dram_reads"] = dram_reads_a
    rows["dram_writes"] = dram_writes_a
    rows["pf_dram_reads"] = pf_a

    return ClassifiedTrace(rows=rows, levels=levels_per_record, trace=trace,
                           config=config)
