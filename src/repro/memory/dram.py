"""Main-memory (DDR4-behind-the-L2HN) timing model.

On the FPGA-SDV the DDR4 runs much faster (333 MHz) than the emulated SoC
(50 MHz), so from the SoC's perspective memory behaves like a fixed-latency,
fully pipelined device: ~50 cycles minimum load-to-use including the on-chip
path. This module models the DRAM *service* portion of that path; the
Latency Controller and Bandwidth Limiter are composed in front of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MemConfig
from repro.memory.bandwidth_limiter import BandwidthLimiter
from repro.memory.latency_controller import LatencyController


@dataclass
class DramStats:
    reads: int = 0
    writes: int = 0

    @property
    def transactions(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_moved(self) -> int:
        from repro.util.units import LINE_BYTES

        return self.transactions * LINE_BYTES


class DramModel:
    """Fixed-service-latency DRAM with the two throttle modules in front.

    ``service(request_time)`` returns the completion time of one 64-byte
    transaction entering the memory subsystem boundary (below L2) at
    ``request_time``: it is admitted by the Bandwidth Limiter, delayed by the
    Latency Controller, then serviced.
    """

    def __init__(self, config: MemConfig) -> None:
        config.validate()
        self.config = config
        self.latency_controller = LatencyController(config.extra_latency_cycles)
        self.bandwidth_limiter = BandwidthLimiter(config.bw_num, config.bw_den)
        self.stats = DramStats()

    def reset(self) -> None:
        self.bandwidth_limiter.reset()
        self.stats = DramStats()

    def service(self, request_time: float, *, write: bool = False) -> float:
        """Completion time of one line transaction entering at ``request_time``."""
        if write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        admitted = self.bandwidth_limiter.admit(request_time)
        delayed = self.latency_controller.delay(admitted)
        return delayed + self.config.dram_service_cycles

    @property
    def unloaded_latency(self) -> int:
        """Latency of one transaction with no contention."""
        return self.config.dram_service_cycles + self.latency_controller.extra_cycles
