"""Simulated memory subsystem of the FPGA-SDV.

Contents mirror the purple/yellow blocks of the paper's Figure 1:

* :mod:`address_space` — flat byte-addressable memory image + allocator,
* :mod:`cache` — set-associative LRU cache model (used for L1D and L2 banks),
* :mod:`l2hn` — the 4-bank shared L2 / home node,
* :mod:`noc` — the 2x2 mesh network-on-chip,
* :mod:`dram` — main-memory timing,
* :mod:`latency_controller` — the Section 2.2 extra-latency module,
* :mod:`bandwidth_limiter` — the Section 2.3 request-window throttle,
* :mod:`classify` — trace-order hit/miss classification used by the engines,
* :mod:`reuse` — reuse-distance (Mattson stack) locality analysis.
"""

from repro.memory.address_space import Allocation, MemoryImage
from repro.memory.cache import CacheStats, SetAssocCache
from repro.memory.noc import MeshNoc
from repro.memory.l2hn import L2HomeNode, MesiState
from repro.memory.dram import DramModel
from repro.memory.latency_controller import LatencyController
from repro.memory.bandwidth_limiter import BandwidthLimiter
from repro.memory.classify import AccessLevel, classify_trace
from repro.memory.reuse import ReuseProfile, profile_trace, reuse_distances

__all__ = [
    "Allocation",
    "MemoryImage",
    "CacheStats",
    "SetAssocCache",
    "MeshNoc",
    "L2HomeNode",
    "MesiState",
    "DramModel",
    "LatencyController",
    "BandwidthLimiter",
    "AccessLevel",
    "classify_trace",
    "ReuseProfile",
    "profile_trace",
    "reuse_distances",
]
