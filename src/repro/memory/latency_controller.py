"""Latency Controller — Section 2.2 of the paper.

A hardware module sitting between the L2HN and DDR4 that stalls each read or
write for a user-defined number of cycles *in a pipelined fashion*: every
request is delayed by the configured amount, but back-to-back requests do not
serialize behind each other — the module only adds latency, never removes
throughput. It is software-configurable at runtime, which is exactly how the
sweeps of Section 4.1 change latency without reprogramming the FPGA.
"""

from __future__ import annotations

from repro.errors import ConfigError


class LatencyController:
    """Pipelined fixed-delay stage in front of main memory."""

    def __init__(self, extra_cycles: int = 0) -> None:
        self._extra = 0
        self.set_extra_cycles(extra_cycles)
        self.reset_stats()

    @property
    def extra_cycles(self) -> int:
        """Currently configured additional delay per memory request."""
        return self._extra

    def set_extra_cycles(self, cycles: int) -> None:
        """Reconfigure at runtime (the module's software interface)."""
        if cycles < 0:
            raise ConfigError(f"extra latency must be >= 0, got {cycles}")
        self._extra = int(cycles)

    def reset_stats(self) -> None:
        self.requests = 0           # requests delayed since reset
        self.added_cycles = 0.0     # total extra latency injected

    def delay(self, request_time: float) -> float:
        """Time at which a request entering at ``request_time`` exits.

        Pipelined: the exit time depends only on the entry time, never on
        other in-flight requests.
        """
        self.requests += 1
        self.added_cycles += self._extra
        return request_time + self._extra

    @property
    def stats(self) -> dict:
        """Delay accounting since the last :meth:`reset_stats`."""
        return {"requests": self.requests, "added_cycles": self.added_cycles}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LatencyController(extra_cycles={self._extra})"
