"""Array-backed trace classification (the stack-distance engine).

Produces a **bit-identical** :class:`repro.memory.classify.ClassifiedTrace`
to the sequential walker :func:`repro.memory.classify.classify_trace`,
orders of magnitude faster at paper scale. The walker steps dict-based
LRU sets one line request at a time; this engine exploits the fact that
in a set-associative true-LRU cache **every set is independent**: a
reference hits iff fewer than ``ways`` distinct lines touched its set
since the previous touch of the same line (its per-set stack distance).

The pipeline is staged (see ``docs/memory-model.md``):

1. **Unit stream** — flatten the trace into one global, program-ordered
   stream of cache "units": scalar elements (L1 demand accesses) and
   coalesced vector line requests (L1 recalls + L2 references).
2. **L1 pass** — only scalar units and the vector units whose line the
   scalar side ever touched can interact with L1 (vector traffic
   bypasses L1; a recall of a never-scalar-touched line is a provable
   no-op). These are partitioned by L1 set and stepped through a
   *lockstep* bounded-LRU kernel: per-set streams advance in rounds, one
   op per set per round, with the LRU stacks of all sets held in one
   ``(sets, ways)`` matrix so every round is a handful of NumPy ops.
   With a stream prefetcher enabled (``l1_prefetch_depth > 0``, an
   ablation — prefetch fills depend on the *demand miss* outcome, which
   couples sets) the L1 pass falls back to an exact sequential sub-walk
   over this filtered stream, which is still tiny for vector kernels.
3. **L2 op stream** — L1 outcomes expand into the exact L2 operation
   sequence of the walker: dirty-victim writebacks *before* their demand
   reference, recall writebacks before the vector reference, prefetch
   references before their own victim writebacks. Every op carries a
   global sort key preserving the walker's per-set interleaving.
4. **L2 pass** — every L2 op (reference or writeback) is a pure
   LRU touch-or-install, so one lockstep run over the banked L2 sets
   yields hits and dirty-victim evictions; levels and per-record
   counters then fall out of vectorized scatters.

The walker remains the reference/spec (same pattern as the ``event`` vs
``event-ref`` engines); ``tests/memory/test_classify_fast.py`` pins the
two bit-identical across kernels, geometries, prefetch depths and
coalescing settings. The lockstep kernel is shared with
:meth:`repro.memory.cache.SetAssocCache.access_lines` and the partition
helpers with :mod:`repro.memory.reuse`.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.config import SdvConfig
from repro.errors import TraceError
from repro.memory.classify import (
    LINE_SHIFT,
    AccessLevel,
    ClassifiedTrace,
    _PATTERN_ID,
    _prepare_rows,
    classify_trace,
)
from repro.trace.events import TraceBuffer, VMemPattern
from repro.util.mathx import log2_int
from repro.util.units import LINE_BYTES

_L1, _L2, _DRAM = (int(AccessLevel.L1), int(AccessLevel.L2),
                   int(AccessLevel.DRAM))


# --------------------------------------------------------------- partition

def ragged_indices(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Flat gather indices for a batch of spans: ``concat(arange(s, s+l))``.

    The standard ragged-range construction shared by the unit-stream
    builder and :func:`repro.memory.reuse.line_stream`.
    """
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    return (
        np.repeat(starts.astype(np.int64), lens)
        + np.arange(total, dtype=np.int64)
        - np.repeat(np.cumsum(lens) - lens, lens)
    )


def prev_occurrence(lines: np.ndarray) -> np.ndarray:
    """Index of the previous access to the same line (-1 for first touch).

    Vectorized (one stable sort); the shared compulsory-miss accounting
    of the classifier and :func:`repro.memory.reuse.reuse_distances`.
    """
    lines = np.asarray(lines, dtype=np.int64)
    n = lines.shape[0]
    prev = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return prev
    order = np.argsort(lines, kind="stable")
    ls = lines[order]
    same = np.zeros(n, dtype=bool)
    np.equal(ls[1:], ls[:-1], out=same[1:])
    prev[order[same]] = order[np.flatnonzero(same) - 1]
    return prev


def first_touch_mask(lines: np.ndarray) -> np.ndarray:
    """True at every compulsory (first-touch) access of a line stream."""
    return prev_occurrence(lines) < 0


def schedule_rounds(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Group a per-row op stream into lockstep rounds.

    ``rows[i]`` is the state-row (set) of op ``i``, ops in stream order.
    Returns ``(order, bounds)``: round ``r`` is the op slice
    ``order[bounds[r]:bounds[r+1]]``, containing at most one op per row,
    and every row's ops appear in stream order across rounds.
    """
    n = rows.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    by_row = np.argsort(rows, kind="stable")
    sorted_rows = rows[by_row]
    new_grp = np.zeros(n, dtype=bool)
    new_grp[0] = True
    np.not_equal(sorted_rows[1:], sorted_rows[:-1], out=new_grp[1:])
    idx = np.arange(n, dtype=np.int64)
    grp_start = np.maximum.accumulate(np.where(new_grp, idx, 0))
    pos_sorted = idx - grp_start
    pos = np.empty(n, dtype=np.int64)
    pos[by_row] = pos_sorted
    order = np.argsort(pos, kind="stable")
    counts = np.bincount(pos_sorted)
    bounds = np.zeros(counts.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    return order, bounds


# ---------------------------------------------------------- lockstep kernel

#: packed timestamp of an empty way — even (clean) and below any real
#: stamp, so ``argmin`` fills empty ways before evicting the LRU way
_EMPTY_TS = -(1 << 50)
#: subtracted from a tag-matching way's timestamp so one fused ``argmin``
#: picks the hit way when present, else the LRU/empty way
_HIT_OFF = 1 << 62
#: picked-way values below this are hits (real/empty stamps stay above)
_HIT_CUT = -(1 << 61)
#: rounds with fewer active rows than this finish in the sequential tail
#: (a round's fixed vectorization overhead ~ hundreds of dict-walk ops)
_TAIL_MIN = 128


class LockstepLru:
    """Bounded true-LRU sets for many independent rows, stepped in rounds.

    Rather than physically keeping each set's recency *order* (which
    would mean shifting a ``(rows, ways)`` matrix every round), state is
    tag + last-touch timestamp per way, interleaved in one
    ``(rows, 2*ways)`` matrix so a round gathers each active row once:
    LRU order is "oldest timestamp", move-to-front is a single timestamp
    store, and the eviction victim is an ``argmin`` over timestamps
    (empty ways carry ``_EMPTY_TS`` so they are always filled first).
    The dirty bit rides in the timestamp's parity bit (stamps are
    ``2*time + dirty``; recency order is unaffected). :meth:`run`
    replays an op stream — at most one op per row per round — with every
    round a handful of vectorized ops across the active rows. Semantics
    match :class:`repro.memory.cache.SetAssocCache` / the dict walk of
    :func:`repro.memory.classify.classify_trace` exactly.
    """

    def __init__(self, n_rows: int, ways: int) -> None:
        self.ways = ways
        self.state = np.empty((n_rows, 2 * ways), dtype=np.int64)
        self.state[:, :ways] = -1
        self.state[:, ways:] = _EMPTY_TS
        self._now = 0  # monotone across run() calls on the same instance

    def load_row(self, row: int, tags: list[int], dirty: set[int]) -> None:
        """Warm-start one row from MRU-first tag list + dirty tag set."""
        k = len(tags)
        W = self.ways
        self.state[row, :k] = tags
        # MRU-first list -> descending (negative) pre-run stamps, with
        # the dirty bit packed into the parity
        self.state[row, W:W + k] = [
            -2 * (i + 1) + (1 if t in dirty else 0)
            for i, t in enumerate(tags)
        ]

    def dump_row(self, row: int) -> tuple[list[int], set[int]]:
        """Final MRU-first tags + dirty tags of one row."""
        W = self.ways
        ts = self.state[row, W:]
        k = int((ts != _EMPTY_TS).sum())
        order = np.argsort(-ts, kind="stable")[:k]
        tags = self.state[row, order].tolist()
        d = ts[order] & 1
        return tags, {t for t, bit in zip(tags, d.tolist()) if bit}

    def run(self, rows: np.ndarray, tags: np.ndarray, writes: np.ndarray,
            recalls: np.ndarray | None = None,
            want_victims: bool = False,
            ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
        """Replay an op stream; returns per-op outcome arrays.

        Ops are *touches* (demand access: LRU move-to-front or install,
        ``writes`` marks the line dirty) unless flagged in ``recalls``
        (coherence recall: remove the line if present, report whether it
        was present and dirty; no install). Returns
        ``(hit, hit_dirty, evict_dirty, victim_tag)``:

        * ``hit`` — touch: present before the access; recall: present;
        * ``hit_dirty`` — the hit way's dirty bit *before* the op (the
          recall-writeback predicate);
        * ``evict_dirty`` — a touch-miss evicted a dirty victim;
        * ``victim_tag`` — the evicted tag (-1 = none), only built when
          ``want_victims`` (L1 victims become L2 writeback ops; L2
          victims only matter through their dirty bit).
        """
        n = rows.shape[0]
        hit = np.zeros(n, dtype=bool)
        hit_dirty = np.zeros(n, dtype=bool)
        evict_dirty = np.zeros(n, dtype=bool)
        victim_tag = np.full(n, -1, dtype=np.int64) if want_victims else None
        if n == 0:
            return hit, hit_dirty, evict_dirty, victim_tag

        # ---- per-row substreams + MRU-run collapse ------------------------
        # Sorting stably by row lays every row's ops out contiguously in
        # stream order. Within a row, a *run* of consecutive touches of
        # the same tag is all guaranteed hits after the first op with no
        # state change other than OR-ing their dirty marks (the line is
        # already MRU; nothing else intervenes in that row), so only run
        # heads enter the simulated stream — this collapse is what tames
        # rows hammered by a hot line. Recalls never collapse and always
        # break the run around them. Row indices fit int32 (set counts
        # are small), halving the radix-sort passes.
        by_row = np.argsort(rows.astype(np.int32, copy=False),
                            kind="stable")
        r_s = rows[by_row]
        t_s = tags[by_row]
        start = np.ones(n, dtype=bool)
        start[1:] = (r_s[1:] != r_s[:-1]) | (t_s[1:] != t_s[:-1])
        if recalls is not None:
            rc_s = recalls[by_row]
            start |= rc_s
            start[1:] |= rc_s[:-1]
        kidx = np.flatnonzero(start)
        m = kidx.shape[0]
        w_run = np.logical_or.reduceat(writes[by_row], kidx)
        k_rows = r_s[kidx]
        k_tags = t_s[kidx]
        k_rc = rc_s[kidx] if recalls is not None else None

        # collapsed ops are guaranteed touch hits (scattered back at the end)
        hit_s = ~start

        # ---- rounds over the collapsed stream (already row-sorted) --------
        idx = np.arange(m, dtype=np.int32)
        new_grp = np.ones(m, dtype=bool)
        new_grp[1:] = k_rows[1:] != k_rows[:-1]
        grp_start = np.maximum.accumulate(
            np.where(new_grp, idx, np.int32(0)))
        pos = idx - grp_start
        order = np.argsort(pos, kind="stable")
        cnt = np.bincount(pos)
        bounds = np.zeros(cnt.shape[0] + 1, dtype=np.int64)
        np.cumsum(cnt, out=bounds[1:])
        slices = bounds.tolist()

        W = self.ways
        state = self.state
        now0 = self._now
        n_rounds = len(slices) - 1

        # hybrid tail: per-round counts are non-increasing, and a round's
        # fixed vectorization overhead swamps its per-op work once few
        # rows stay active — finish those long per-row tails with an
        # exact dict walk seeded from (and written back to) matrix state
        tail_at = np.flatnonzero(cnt < _TAIL_MIN)
        c = int(tail_at[0]) if tail_at.shape[0] else n_rounds
        self._now = now0 + (c + W if c < n_rounds else n_rounds)
        ar_all = np.arange(int(cnt[0]) if c else 0, dtype=np.int64)

        # pre-permute the streams into round order so every round reads
        # contiguous views and writes contiguous outcome buffers; one
        # scatter per output at the end undoes the permutation
        kr = k_rows[order]
        kt = k_tags[order]
        kw = w_run[order]
        krc = k_rc[order] if k_rc is not None else None
        hit_o = np.zeros(m, dtype=bool)
        hd_o = np.zeros(m, dtype=bool)
        ev_o = np.zeros(m, dtype=bool)
        vt_o = np.full(m, -1, dtype=np.int64) if want_victims else None

        for r in range(c):
            a, b = slices[r], slices[r + 1]
            rw = kr[a:b]
            tg = kt[a:b]
            g = state[rw]                         # (K, 2W) snapshot
            st = g[:, :W]
            tr = g[:, W:]
            # fused hit-way / LRU-way pick: a matching way's stamp drops
            # below every real or empty stamp; else argmin lands on the
            # first empty (or LRU) way
            sel = tr - (st == tg[:, None]) * _HIT_OFF
            way = sel.argmin(axis=1)
            ar = ar_all[:b - a]
            minv = sel[ar, way]
            hit_r = minv < _HIT_CUT
            odd = (minv & 1).astype(bool)         # picked way's dirty bit
            hd_r = hit_r & odd
            hit_o[a:b] = hit_r
            hd_o[a:b] = hd_r
            wv = kw[a:b]

            if krc is not None:
                rc = krc[a:b]
                # ---- recalls: delete-if-present
                r_idx = np.flatnonzero(rc & hit_r)
                if r_idx.shape[0]:
                    rwr, wr_ = rw[r_idx], way[r_idx]
                    state[rwr, wr_] = -1
                    state[rwr, wr_ + W] = _EMPTY_TS
                t_idx = np.flatnonzero(~rc)
                if t_idx.shape[0] == 0:
                    continue
                ebuf = ev_o[a:b]
                vbuf = vt_o[a:b] if vt_o is not None else None
                rw, tg, wv = rw[t_idx], tg[t_idx], wv[t_idx]
                hit_r, way, odd, hd_r = (hit_r[t_idx], way[t_idx],
                                         odd[t_idx], hd_r[t_idx])
                minv, st = minv[t_idx], st[t_idx]
                # ---- touches: recall and touch rows are disjoint, so
                # the pre-recall snapshot stays valid
                ev = ~hit_r & (minv != _EMPTY_TS)
                ebuf[t_idx] = ev & odd
                if vbuf is not None and ev.any():
                    e = np.flatnonzero(ev)
                    vbuf[t_idx[e]] = st[e, way[e]]
                state[rw, way] = tg
                state[rw, way + W] = ((now0 + r) << 1) + (hd_r | wv)
                continue

            # ---- touches: timestamp bump / install over the picked way.
            # A miss's pick is an empty way unless the row is full, so a
            # non-empty pick on a miss is an eviction; the victim's dirty
            # bit is the picked stamp's parity (empties are even).
            ev = ~hit_r & (minv != _EMPTY_TS)
            ev_o[a:b] = ev & odd
            if vt_o is not None and ev.any():
                e = np.flatnonzero(ev)
                vt_o[a:b][e] = st[e, way[e]]
            state[rw, way] = tg
            state[rw, way + W] = ((now0 + r) << 1) + (hd_r | wv)

        # undo the round permutation, then let the tail fill kept-space
        hit_k = np.zeros(m, dtype=bool)
        hd_k = np.zeros(m, dtype=bool)
        ev_k = np.zeros(m, dtype=bool)
        hit_k[order] = hit_o
        hd_k[order] = hd_o
        ev_k[order] = ev_o
        vt_k = None
        if vt_o is not None:
            vt_k = np.full(m, -1, dtype=np.int64)
            vt_k[order] = vt_o

        if c < n_rounds:
            self._run_tail(c, new_grp, k_rows, k_tags, w_run, k_rc,
                           now0 + c, hit_k, hd_k, ev_k, vt_k)

        # ---- scatter collapsed-stream outcomes back to stream order -------
        hit_s[kidx] = hit_k
        hit[by_row] = hit_s
        hd_full = np.zeros(n, dtype=bool)
        hd_full[kidx] = hd_k
        hit_dirty[by_row] = hd_full
        ev_full = np.zeros(n, dtype=bool)
        ev_full[kidx] = ev_k
        evict_dirty[by_row] = ev_full
        if want_victims and victim_tag is not None and vt_k is not None:
            vt_full = np.full(n, -1, dtype=np.int64)
            vt_full[kidx] = vt_k
            victim_tag[by_row] = vt_full
        return hit, hit_dirty, evict_dirty, victim_tag

    def _run_tail(self, c: int, new_grp: np.ndarray, k_rows: np.ndarray,
                  k_tags: np.ndarray, w_run: np.ndarray,
                  k_rc: np.ndarray | None, ts_base: int,
                  hit_k: np.ndarray, hd_k: np.ndarray, ev_k: np.ndarray,
                  vt_k: np.ndarray | None) -> None:
        """Finish ops past round ``c`` with an exact per-row dict walk.

        Rows are independent, so each row's leftover ops (position >= c
        in its collapsed substream) replay sequentially against an
        insertion-ordered dict seeded from the row's matrix state —
        LRU-first, matching the walker's ``next(iter(t))`` victim pick —
        and the final stack is written back with fresh timestamps.
        """
        m = k_rows.shape[0]
        W = self.ways
        state = self.state
        starts_g = np.flatnonzero(new_grp)
        ends_g = np.append(starts_g[1:], m)
        long_g = np.flatnonzero(ends_g - starts_g > c)
        for s0, s1 in zip((starts_g[long_g] + c).tolist(),
                          ends_g[long_g].tolist()):
            row = int(k_rows[s0])
            trow = state[row, :W]
            tsrow = state[row, W:]
            occ = int((tsrow != _EMPTY_TS).sum())
            t: dict[int, None] = {}
            d: set[int] = set()
            if occ:
                # ascending-timestamp order: empty ways first, then
                # occupied oldest -> newest
                ways_lru = np.argsort(tsrow, kind="stable")[W - occ:]
                for wi in ways_lru.tolist():
                    tg = int(trow[wi])
                    t[tg] = None
                    if tsrow[wi] & 1:
                        d.add(tg)
            tg_l = k_tags[s0:s1].tolist()
            wr_l = w_run[s0:s1].tolist()
            rc_l = k_rc[s0:s1].tolist() if k_rc is not None else None
            for jj, tag in enumerate(tg_l):
                j = s0 + jj
                if rc_l is not None and rc_l[jj]:
                    if tag in t:
                        hit_k[j] = True
                        del t[tag]
                        if tag in d:
                            hd_k[j] = True
                            d.discard(tag)
                    continue
                if tag in t:
                    hit_k[j] = True
                    if tag in d:
                        hd_k[j] = True
                    del t[tag]
                    t[tag] = None
                    if wr_l[jj]:
                        d.add(tag)
                    continue
                t[tag] = None
                if wr_l[jj]:
                    d.add(tag)
                if len(t) > W:
                    victim = next(iter(t))
                    del t[victim]
                    if victim in d:
                        d.discard(victim)
                        ev_k[j] = True
                    if vt_k is not None:
                        vt_k[j] = victim
            trow.fill(-1)
            tsrow.fill(_EMPTY_TS)
            for i2, tg in enumerate(t):
                trow[i2] = tg
                tsrow[i2] = ((ts_base + i2) << 1) + (1 if tg in d else 0)


# ------------------------------------------------------------- unit stream

def _build_units(cols: Any, work: np.ndarray, is_scalar: np.ndarray,
                 span_len: np.ndarray, coal_lines: np.ndarray,
                 c_off: np.ndarray, unit_pattern_id: int
                 ) -> dict[str, np.ndarray]:
    """Flatten work records into the global, program-ordered unit stream.

    A *unit* is one cache interaction slot: a scalar memory element or a
    coalesced vector line request. Unit ``u`` is also level slot ``u`` of
    the flat per-record levels arena.
    """
    sc_w = is_scalar[work]
    cnt = np.where(sc_w, span_len[work],
                   c_off[work + 1] - c_off[work]).astype(np.int64)
    u_off = np.zeros(work.shape[0] + 1, dtype=np.int64)
    np.cumsum(cnt, out=u_off[1:])
    total = int(u_off[-1])

    starts = np.where(sc_w, cols.addr_off[work], c_off[work])
    src = ragged_indices(starts, cnt)
    is_scalar_u = np.repeat(sc_w, cnt)
    rec_u = np.repeat(work, cnt)

    lines_all = cols.addrs >> LINE_SHIFT
    line_u = np.empty(total, dtype=np.int64)
    line_u[is_scalar_u] = lines_all[src[is_scalar_u]]
    line_u[~is_scalar_u] = coal_lines[src[~is_scalar_u]]

    write_u = np.empty(total, dtype=bool)
    write_u[is_scalar_u] = cols.writes[src[is_scalar_u]]
    rec_write = np.repeat(cols.is_write[work].astype(bool), cnt)
    write_u[~is_scalar_u] = rec_write[~is_scalar_u]

    # unit-stride vector stores allocate whole lines without fetching
    nofill_w = (cols.is_write[work].astype(bool) & ~sc_w
                & (cols.pattern[work] == unit_pattern_id))
    nofill_u = np.repeat(nofill_w, cnt)

    return {"line": line_u, "write": write_u, "rec": rec_u,
            "is_scalar": is_scalar_u, "nofill": nofill_u,
            "u_off": u_off, "cnt": cnt}


# ------------------------------------------------------- the staged engine

def classify_trace_fast(trace: TraceBuffer,
                        config: SdvConfig) -> ClassifiedTrace:
    """Classify ``trace`` with the array-backed stack-distance engine.

    Bit-identical to :func:`repro.memory.classify.classify_trace` (rows,
    per-record levels, totals); see the module docstring for the staged
    pipeline.
    """
    if not trace.sealed:
        raise TraceError("classify_trace_fast requires a sealed trace")
    config.validate()
    from repro.obs.engine_stats import get_engine_stats, \
        introspection_enabled

    stats = get_engine_stats() if introspection_enabled() else None
    if stats is not None:
        stats.count("classify.stack_runs")

    cols = trace.cols
    n = cols.n
    rows, vm_mask, coal_lines, c_off, span_len, is_scalar = _prepare_rows(
        cols, config)
    levels: list[np.ndarray | None] = [None] * n

    work = np.flatnonzero((is_scalar & (span_len > 0)) | vm_mask)
    if work.shape[0] == 0:
        return ClassifiedTrace(rows=rows, levels=levels, trace=trace,
                               config=config)

    unit_id = _PATTERN_ID[VMemPattern.UNIT]
    units = _build_units(cols, work, is_scalar, span_len, coal_lines,
                         c_off, unit_id)
    line_u, write_u = units["line"], units["write"]
    rec_u, is_scalar_u = units["rec"], units["is_scalar"]
    nofill_u, u_off = units["nofill"], units["u_off"]
    U = line_u.shape[0]
    if stats is not None:
        stats.count("classify.units", U)

    # geometry (same derivations as the walker)
    core, l2cfg = config.core, config.l2
    l1_ways = core.l1d_ways
    n_sets1 = core.l1d_bytes // (l1_ways * LINE_BYTES)
    mask1 = n_sets1 - 1
    bank_mask = l2cfg.banks - 1
    bank_bits = log2_int(l2cfg.banks)
    l2_ways = l2cfg.ways
    n_sets2 = l2cfg.bank_bytes // (l2_ways * LINE_BYTES)
    mask2 = n_sets2 - 1
    depth = core.l1_prefetch_depth

    # ---------------- stage 2: the L1 pass --------------------------------
    scalar_u = np.flatnonzero(is_scalar_u)
    vec_u = np.flatnonzero(~is_scalar_u)
    l1_hit = np.zeros(U, dtype=bool)
    recall_dirty = np.zeros(U, dtype=bool)
    victim_line = np.full(U, -1, dtype=np.int64)
    victim_dirty = np.zeros(U, dtype=bool)
    seq_ops: list[tuple[int, int, bool, bool, int, int, bool, bool]] | None
    seq_ops = None

    if scalar_u.shape[0] == 0:
        pass  # pure vector stream: L1 stays empty, recalls are no-ops
    elif depth == 0:
        # only lines the scalar side demanded can ever be L1-resident;
        # membership via a dense line-range table when compact (the
        # common case for the paper kernels), else sort-based isin
        sc_lines = line_u[scalar_u]
        v_lines = line_u[vec_u]
        lo = int(sc_lines.min())
        span = int(sc_lines.max()) - lo + 1
        if span <= 4 * (sc_lines.shape[0] + v_lines.shape[0]) + 4096:
            present = np.zeros(span, dtype=bool)
            present[sc_lines - lo] = True
            in_range = (v_lines >= lo) & (v_lines < lo + span)
            cand = np.zeros(v_lines.shape[0], dtype=bool)
            cand[in_range] = present[v_lines[in_range] - lo]
        else:
            cand = np.isin(v_lines, sc_lines)
        # scalar_u and vec_u[cand] are sorted and disjoint: merge by
        # scatter instead of sorting the concatenation
        a, b = scalar_u, vec_u[cand]
        l1_u = np.empty(a.shape[0] + b.shape[0], dtype=np.int64)
        l1_u[np.arange(a.shape[0]) + np.searchsorted(b, a)] = a
        l1_u[np.arange(b.shape[0]) + np.searchsorted(a, b)] = b
        if stats is not None:
            stats.count("classify.recall_candidates", int(cand.sum()))
        rows1 = line_u[l1_u] & mask1
        lru = LockstepLru(n_sets1, l1_ways)
        hit, hd, ev, vic = lru.run(rows1, line_u[l1_u], write_u[l1_u],
                                   recalls=~is_scalar_u[l1_u],
                                   want_victims=True)
        l1_hit[l1_u] = hit & is_scalar_u[l1_u]
        recall_dirty[l1_u] = hd & ~is_scalar_u[l1_u]
        victim_dirty[l1_u] = ev
        if vic is not None:
            victim_line[l1_u] = vic
        if stats is not None:
            stats.high("classify.l1_sets", n_sets1)
    else:
        # stream prefetch couples sets through the demand-miss outcome:
        # exact sequential sub-walk over the filtered stream, emitting
        # the L2 op list in walker order (sub-keys documented below)
        seq_ops = _sequential_l1(line_u, write_u, rec_u, is_scalar_u,
                                 nofill_u, scalar_u, vec_u, mask1, l1_ways,
                                 depth, l1_hit)
        if stats is not None:
            stats.count("classify.seq_l1_walks")

    # ---------------- stage 3: the L2 op stream ---------------------------
    # per-unit sub-op order (matching the walker): a dirty-victim (or
    # recall) writeback precedes its reference; prefetch references
    # precede their own victim writebacks. Key = unit * stride + sub.
    if seq_ops is None:
        ref_u = np.flatnonzero((is_scalar_u & ~l1_hit) | ~is_scalar_u)
        wb_mask = victim_dirty | recall_dirty
        wb_u = np.flatnonzero(wb_mask)
        wb_line = np.where(is_scalar_u[wb_u], victim_line[wb_u],
                           line_u[wb_u])
        # keys are unit*2 (writeback) / unit*2+1 (reference); both id
        # streams are already sorted, so the key-ordered op stream is a
        # two-way merge realized by scattering each stream to its final
        # position (rank within itself + rank across the other stream)
        nw, nr = wb_u.shape[0], ref_u.shape[0]
        pw = np.arange(nw) + np.searchsorted(ref_u, wb_u, side="left")
        pr = np.arange(nr) + np.searchsorted(wb_u, ref_u, side="right")
        n_tot = nw + nr
        op_line = np.empty(n_tot, dtype=np.int64)
        op_line[pw] = wb_line
        op_line[pr] = line_u[ref_u]
        op_is_wb = np.zeros(n_tot, dtype=bool)
        op_is_wb[pw] = True
        op_mark = np.ones(n_tot, dtype=bool)
        op_mark[pr] = write_u[ref_u] & ~is_scalar_u[ref_u]
        op_rec = np.empty(n_tot, dtype=np.int64)
        op_rec[pw] = rec_u[wb_u]
        op_rec[pr] = rec_u[ref_u]
        op_slot = np.full(n_tot, -1, dtype=np.int64)
        op_slot[pr] = ref_u
        op_nofill = np.zeros(n_tot, dtype=bool)
        op_nofill[pr] = nofill_u[ref_u]
        op_pf = np.zeros(n_tot, dtype=bool)
    else:
        # vector units never probed by the sequential walk still emit
        # their REF op (key sub=1); merge with the sequential list
        stride = 2 * depth + 2
        arr = np.array(seq_ops, dtype=np.int64) if seq_ops else \
            np.empty((0, 8), dtype=np.int64)
        nc_mask = np.ones(U, dtype=bool)
        nc_mask[scalar_u] = False
        if arr.shape[0]:
            probed = arr[arr[:, 7] == 1, 5]
            nc_mask[probed] = False
        nc = np.flatnonzero(nc_mask & ~is_scalar_u)
        key = np.concatenate([arr[:, 0], nc * stride + 1])
        op_line = np.concatenate([arr[:, 1], line_u[nc]])
        op_is_wb = np.concatenate([arr[:, 2].astype(bool),
                                   np.zeros(nc.shape[0], bool)])
        op_mark = np.concatenate([arr[:, 3].astype(bool), write_u[nc]])
        op_rec = np.concatenate([arr[:, 4], rec_u[nc]])
        op_slot = np.concatenate([arr[:, 5], nc])
        op_nofill = np.concatenate([arr[:, 6].astype(bool), nofill_u[nc]])
        op_pf = np.concatenate([arr[:, 7] == 2,
                                np.zeros(nc.shape[0], bool)])
        order = np.argsort(key)
        op_line, op_is_wb, op_mark = (op_line[order], op_is_wb[order],
                                      op_mark[order])
        op_rec, op_slot = op_rec[order], op_slot[order]
        op_nofill, op_pf = op_nofill[order], op_pf[order]

    # ---------------- stage 4: the L2 lockstep pass -----------------------
    n_ops = op_line.shape[0]
    if stats is not None:
        stats.count("classify.l2_ops", n_ops)
    if n_ops:
        local = op_line >> bank_bits
        rows2 = (op_line & bank_mask) * n_sets2 + (local & mask2)
        lru2 = LockstepLru(l2cfg.banks * n_sets2, l2_ways)
        hit2, _hd2, ev2, _ = lru2.run(rows2, local, op_mark)
        if stats is not None:
            stats.high("classify.l2_sets", l2cfg.banks * n_sets2)
    else:
        hit2 = np.zeros(0, dtype=bool)
        ev2 = np.zeros(0, dtype=bool)

    # ---------------- accounting: vectorized scatters ---------------------
    levels_flat = np.zeros(U, dtype=np.uint8)
    sc_hit = scalar_u[l1_hit[scalar_u]] if scalar_u.shape[0] else scalar_u
    levels_flat[sc_hit] = _L1
    demand = ~op_is_wb & ~op_pf
    served_l2 = demand & (hit2 | op_nofill)
    dram_read = demand & ~hit2 & ~op_nofill
    if n_ops:
        levels_flat[op_slot[served_l2]] = _L2
        levels_flat[op_slot[dram_read]] = _DRAM
    rows["l1_hits"] = np.bincount(rec_u[sc_hit], minlength=n)
    rows["l2_hits"] = np.bincount(op_rec[served_l2], minlength=n)
    rows["dram_reads"] = np.bincount(op_rec[dram_read], minlength=n)
    rows["dram_writes"] = np.bincount(op_rec[ev2], minlength=n)
    rows["pf_dram_reads"] = np.bincount(op_rec[op_pf & ~hit2], minlength=n)

    lo_hi = u_off.tolist()
    for rec, lo, hi in zip(work.tolist(), lo_hi, lo_hi[1:]):
        levels[rec] = levels_flat[lo:hi]

    return ClassifiedTrace(rows=rows, levels=levels, trace=trace,
                           config=config)


def _sequential_l1(line_u: np.ndarray, write_u: np.ndarray,
                   rec_u: np.ndarray, is_scalar_u: np.ndarray,
                   nofill_u: np.ndarray, scalar_u: np.ndarray,
                   vec_u: np.ndarray, mask1: int, l1_ways: int, depth: int,
                   l1_hit: np.ndarray
                   ) -> list[tuple[int, int, bool, bool, int, int, bool,
                                   bool]]:
    """Exact sequential L1 sub-walk for the prefetch ablation.

    Replays the walker's L1 (demand + stream prefetch + recall) logic
    over scalar units and the vector units whose line the scalar side
    could ever have installed, emitting L2 ops as
    ``(key, line, is_wb, mark_dirty, rec, slot, nofill, kind)`` tuples
    — ``kind`` 0 = writeback, 1 = demand/recall reference (slot = unit),
    2 = prefetch reference. Sub-key order per unit: demand victim-WB(0),
    REF(1), then per prefetch step p: REF(2p), victim-WB(2p+1).
    """
    stride = 2 * depth + 2
    cand_lines = np.unique(np.concatenate(
        [line_u[scalar_u] + p for p in range(depth + 1)]))
    vc = vec_u[np.isin(line_u[vec_u], cand_lines)]
    walk_u = np.sort(np.concatenate([scalar_u, vc]))

    tags: list[dict[int, None]] = [{} for _ in range(mask1 + 1)]
    dirty: list[set[int]] = [set() for _ in range(mask1 + 1)]
    ops: list[tuple[int, int, bool, bool, int, int, bool, bool]] = []
    w_line = line_u[walk_u].tolist()
    w_write = write_u[walk_u].tolist()
    w_rec = rec_u[walk_u].tolist()
    w_scal = is_scalar_u[walk_u].tolist()
    w_nofill = nofill_u[walk_u].tolist()

    for j, u in enumerate(walk_u.tolist()):
        line, rec = w_line[j], w_rec[j]
        base = u * stride
        if not w_scal[j]:
            # vector unit: home-node recall, then the L2 reference
            si = line & mask1
            t = tags[si]
            if line in t:
                del t[line]
                d = dirty[si]
                if line in d:
                    d.discard(line)
                    ops.append((base, line, True, True, rec, -1, False,
                                False))
            ops.append((base + 1, line, False, bool(w_write[j]), rec, u,
                        bool(w_nofill[j]), True))
            continue
        # scalar demand access
        si = line & mask1
        t = tags[si]
        if line in t:
            del t[line]
            t[line] = None
            if w_write[j]:
                dirty[si].add(line)
            l1_hit[u] = True
            continue
        t[line] = None
        if w_write[j]:
            dirty[si].add(line)
        if len(t) > l1_ways:
            victim = next(iter(t))
            del t[victim]
            d = dirty[si]
            if victim in d:
                d.discard(victim)
                ops.append((base, victim, True, True, rec, -1, False,
                            False))
        ops.append((base + 1, line, False, False, rec, u, False, True))
        for p in range(1, depth + 1):
            pline = line + p
            psi = pline & mask1
            pt = tags[psi]
            if pline in pt:
                continue
            ops.append((base + 2 * p, pline, False, False, rec, -1, False,
                        2))
            pt[pline] = None
            if len(pt) > l1_ways:
                victim = next(iter(pt))
                del pt[victim]
                d = dirty[psi]
                if victim in d:
                    d.discard(victim)
                    ops.append((base + 2 * p + 1, victim, True, True, rec,
                                -1, False, False))
    return ops


# ------------------------------------------------- level-span (de)flattening

def pack_levels(levels: list[np.ndarray | None]
                ) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a ragged per-record ``levels`` list into ``(lens, flat)``.

    ``lens[i]`` is the i-th record's level count, ``-1`` for records
    that carry no level data (barriers, vector arithmetic); ``flat`` is
    the uint8 concatenation of the present arrays in record order. The
    shared wire format of the shm classified plane and the on-disk
    classified sidecar.
    """
    lens = np.fromiter(
        ((-1 if lv is None else lv.shape[0]) for lv in levels),
        dtype=np.int64, count=len(levels))
    parts = [np.ascontiguousarray(lv, dtype=np.uint8)
             for lv in levels if lv is not None]
    flat = (np.concatenate(parts) if parts
            else np.zeros(0, dtype=np.uint8))
    return lens, flat


def unpack_levels(lens: np.ndarray,
                  flat: np.ndarray) -> list[np.ndarray | None]:
    """Inverse of :func:`pack_levels`; the returned arrays are views
    into ``flat`` (zero-copy when ``flat`` maps a shared segment)."""
    present = np.maximum(lens, 0)
    ends = np.cumsum(present)
    starts = ends - present
    # single list comprehension over pre-materialized scalars: ~25% less
    # per-record overhead than scattering into a preallocated list, and
    # this loop is the dominant cost of a plane attach
    return [flat[s:e] if keep >= 0 else None
            for s, e, keep in zip(starts.tolist(), ends.tolist(),
                                  lens.tolist())]


# ------------------------------------------------------ the engine registry

#: classification engines, same selector pattern as ``repro.engine.ENGINES``
#: ("stack" is the production engine, "walk" the sequential reference/spec)
CLASSIFIERS: dict[str, Callable[[TraceBuffer, SdvConfig], ClassifiedTrace]]
CLASSIFIERS = {
    "stack": classify_trace_fast,
    "walk": classify_trace,
}

_DEFAULT = "stack"


def default_classifier() -> str:
    """The process-wide default classification engine name."""
    return _DEFAULT


def set_default_classifier(name: str) -> None:
    """Set the process-wide default (CLI ``--classify``); results are
    bit-identical either way, only throughput differs."""
    global _DEFAULT
    if name not in CLASSIFIERS:
        raise TraceError(
            f"unknown classifier '{name}' (choose from {sorted(CLASSIFIERS)})")
    _DEFAULT = name
