"""Bandwidth Limiter — Section 2.3 of the paper.

The hardware module operates in *time windows* and admits only a limited
number of memory requests per window: to throttle to 33% of peak, set the
numerator register to 1 and the denominator to 3 — then one request is
admitted per 3-cycle window. Peak is one 64-byte request per cycle, i.e.
64 Bytes/cycle.

This model reproduces the window accounting exactly: requests arriving when
the current window's quota is spent wait for the next window. It exposes
both a stateful per-request interface (for the event engine) and a closed
form throughput bound (for the fast engine).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.util.units import LINE_BYTES


class BandwidthLimiter:
    """num-requests-per-den-cycle window throttle in front of DRAM."""

    def __init__(self, num: int = 1, den: int = 1) -> None:
        self._num = 1
        self._den = 1
        self.set_fraction(num, den)
        self.reset()

    # -- configuration -------------------------------------------------------

    def set_fraction(self, num: int, den: int) -> None:
        """Set the numerator/denominator registers (runtime-configurable)."""
        if num < 1 or den < 1:
            raise ConfigError(f"fraction terms must be >= 1, got {num}/{den}")
        if num > den:
            raise ConfigError(f"fraction {num}/{den} exceeds peak (1/1)")
        self._num = int(num)
        self._den = int(den)

    @property
    def fraction(self) -> tuple[int, int]:
        return self._num, self._den

    @property
    def requests_per_cycle(self) -> float:
        """Admitted request rate (requests/cycle)."""
        return self._num / self._den

    @property
    def bytes_per_cycle(self) -> float:
        """Admitted bandwidth with 64-byte requests."""
        return LINE_BYTES * self.requests_per_cycle

    # -- stateful admission (event engine) ------------------------------------

    def reset(self) -> None:
        self._window_start = 0
        self._window_used = 0
        self.admitted = 0            # requests admitted since reset
        self.throttle_cycles = 0.0   # total admission delay imposed
        # introspection only (repro.obs.engine_stats): admissions that took
        # the collapsed den==1 path. Deliberately NOT part of ``stats`` —
        # that dict is pinned bit-equal across the event engines.
        self.fast_admits = 0

    def admit(self, request_time: float) -> float:
        """Admission time for a request arriving at ``request_time``.

        Requests must be offered in non-decreasing time order (the event
        engine pops them from a priority queue).
        """
        t = int(request_time)
        if self._den == 1:
            # peak rate: one request per 1-cycle window. The window state
            # collapses to a next-free-cycle counter; the general path
            # below computes the same result with the same end state.
            at = self._window_start + self._window_used
            if at < t:
                at = t
            self._window_start = at
            self._window_used = 1
            self.admitted += 1
            self.fast_admits += 1
            d = at - request_time
            if d > 0.0:
                self.throttle_cycles += d
            return float(at)
        window = max(self._window_start, (t // self._den) * self._den)
        if window > self._window_start:
            self._window_start = window
            self._window_used = 0
        # advance windows until one has quota at/after the arrival time
        while True:
            if self._window_used < self._num:
                admit_at = max(t, self._window_start)
                if admit_at < self._window_start + self._den:
                    self._window_used += 1
                    self.admitted += 1
                    self.throttle_cycles += max(0.0, admit_at - request_time)
                    return float(admit_at)
            self._window_start += self._den
            self._window_used = 0
            t = max(t, self._window_start)

    @property
    def stats(self) -> dict:
        """Admission accounting since the last :meth:`reset`."""
        return {
            "admitted": self.admitted,
            "throttle_cycles": self.throttle_cycles,
        }

    # -- closed form (fast engine) --------------------------------------------

    def min_cycles_for_requests(self, n_requests: int) -> float:
        """Lower bound on cycles to stream ``n_requests`` through the limiter."""
        if n_requests <= 0:
            return 0.0
        full_windows = (n_requests - 1) // self._num
        return full_windows * self._den + 1.0

    def min_cycles_for_bytes(self, n_bytes: float) -> float:
        """Lower bound on cycles to move ``n_bytes`` (64 B per request)."""
        n_requests = -(-int(n_bytes) // LINE_BYTES)
        return self.min_cycles_for_requests(n_requests)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BandwidthLimiter({self._num}/{self._den})"
