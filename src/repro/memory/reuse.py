"""Reuse-distance analysis (Mattson stack algorithm).

A trace's *reuse-distance histogram* — for each access, the number of
distinct lines touched since the previous access to the same line — fully
determines its hit rate in any fully-associative LRU cache: an access hits
a cache of C lines iff its reuse distance is < C. That makes the histogram
the compact, cache-size-independent fingerprint of a workload's locality,
and the standard tool for answering "how big an L2 would this kernel
need?" without re-running the cache simulator per size.

Provided here:

* :func:`reuse_distances` — per-access distances for a line stream
  (O(N log N) with a Fenwick tree over last-access times);
* :class:`ReuseProfile` — histogram + derived miss-ratio curve and
  working-set summaries;
* :func:`profile_trace` — build the profile for a recorded trace's memory
  reference stream (scalar refs and vector line requests combined, in
  program order).

The unit tests validate the miss-ratio curve against direct simulation
with :class:`repro.memory.cache.SetAssocCache` at full associativity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.memory.classify import _coalesce_lines
from repro.trace.events import ScalarBlock, TraceBuffer, VectorInstr, VOpClass
from repro.util.mathx import log2_int
from repro.util.units import LINE_BYTES

#: histogram bucket for first-touch (compulsory) accesses
INFINITE = -1


class _Fenwick:
    """Fenwick (binary indexed) tree for prefix sums over time slots."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of slots [0, i]."""
        i += 1
        s = 0
        while i > 0:
            s += self.tree[i]
            i -= i & (-i)
        return int(s)


def reuse_distances(lines: np.ndarray) -> np.ndarray:
    """LRU stack distance of every access in a line-number stream.

    Returns an int64 array aligned with ``lines``; first touches get
    :data:`INFINITE` (-1).
    """
    lines = np.asarray(lines, dtype=np.int64)
    n = lines.shape[0]
    out = np.empty(n, dtype=np.int64)
    last_seen: dict[int, int] = {}
    tree = _Fenwick(n)
    for t in range(n):
        line = int(lines[t])
        prev = last_seen.get(line)
        if prev is None:
            out[t] = INFINITE
        else:
            # distinct lines touched strictly between prev and t
            out[t] = tree.prefix(t - 1) - tree.prefix(prev)
            tree.add(prev, -1)
        tree.add(t, 1)
        last_seen[line] = t
    return out


@dataclass(frozen=True)
class ReuseProfile:
    """Reuse-distance histogram of one reference stream."""

    distances: np.ndarray      # per access; -1 = compulsory
    n_lines: int               # distinct lines (working set, lines)

    @property
    def accesses(self) -> int:
        return int(self.distances.shape[0])

    @property
    def compulsory(self) -> int:
        return int((self.distances == INFINITE).sum())

    @property
    def footprint_bytes(self) -> int:
        return self.n_lines * LINE_BYTES

    def miss_ratio(self, cache_lines: int) -> float:
        """Miss ratio in a fully-associative LRU cache of ``cache_lines``."""
        if self.accesses == 0:
            return 0.0
        misses = int(((self.distances == INFINITE)
                      | (self.distances >= cache_lines)).sum())
        return misses / self.accesses

    def miss_ratio_curve(self, sizes_bytes: list[int]) -> dict[int, float]:
        """size (bytes) -> miss ratio, for plotting/working-set analysis."""
        return {s: self.miss_ratio(max(1, s // LINE_BYTES))
                for s in sizes_bytes}

    def working_set_bytes(self, target_hit_rate: float = 0.95) -> int:
        """Smallest power-of-two cache size reaching the target hit rate.

        Returns the full footprint if even that cannot reach it
        (compulsory misses bound the achievable hit rate).
        """
        if not 0 < target_hit_rate < 1:
            raise TraceError("target hit rate must be in (0, 1)")
        size = LINE_BYTES
        limit = max(LINE_BYTES, self.footprint_bytes * 2)
        while size <= limit:
            if 1.0 - self.miss_ratio(size // LINE_BYTES) >= target_hit_rate:
                return size
            size *= 2
        return self.footprint_bytes


def line_stream(trace: TraceBuffer, *, coalesce_gathers: bool = True
                ) -> np.ndarray:
    """Program-order 64-byte line reference stream of a trace."""
    shift = log2_int(LINE_BYTES)
    chunks: list[np.ndarray] = []
    for rec in trace:
        if isinstance(rec, ScalarBlock):
            if rec.n_mem_ops:
                chunks.append(rec.mem_addrs >> shift)
        elif isinstance(rec, VectorInstr) and rec.op is VOpClass.MEM:
            chunks.append(_coalesce_lines(rec.addrs, rec.pattern,
                                          coalesce_gathers))
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


def profile_trace(trace: TraceBuffer, **kwargs) -> ReuseProfile:
    """Reuse profile of a recorded trace's memory reference stream."""
    lines = line_stream(trace, **kwargs)
    return ReuseProfile(
        distances=reuse_distances(lines),
        n_lines=int(np.unique(lines).shape[0]) if lines.size else 0,
    )
