"""Reuse-distance analysis (Mattson stack algorithm).

A trace's *reuse-distance histogram* — for each access, the number of
distinct lines touched since the previous access to the same line — fully
determines its hit rate in any fully-associative LRU cache: an access hits
a cache of C lines iff its reuse distance is < C. That makes the histogram
the compact, cache-size-independent fingerprint of a workload's locality,
and the standard tool for answering "how big an L2 would this kernel
need?" without re-running the cache simulator per size.

Provided here:

* :func:`reuse_distances` — per-access distances for a line stream
  (O(N log N) with a Fenwick tree over last-access times);
* :class:`ReuseProfile` — histogram + derived miss-ratio curve and
  working-set summaries;
* :func:`profile_trace` — build the profile for a recorded trace's memory
  reference stream (scalar refs and vector line requests combined, in
  program order).

The unit tests validate the miss-ratio curve against direct simulation
with :class:`repro.memory.cache.SetAssocCache` at full associativity.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import TraceError
from repro.memory.classify import _coalesce_lines
from repro.memory.classify_fast import first_touch_mask, prev_occurrence
from repro.trace.events import ScalarBlock, TraceBuffer, VectorInstr, VOpClass
from repro.util.mathx import log2_int
from repro.util.units import LINE_BYTES

#: histogram bucket for first-touch (compulsory) accesses
INFINITE = -1


class _Fenwick:
    """Fenwick (binary indexed) tree for prefix sums over time slots."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of slots [0, i]."""
        i += 1
        s = 0
        while i > 0:
            s += self.tree[i]
            i -= i & (-i)
        return int(s)


def _stream_distances(lines: np.ndarray) -> np.ndarray:
    """Stack distances of one contiguous stream (no set partitioning)."""
    n = lines.shape[0]
    out = np.full(n, INFINITE, dtype=np.int64)
    if n == 0:
        return out
    # shared first-touch / previous-occurrence accounting with the trace
    # classifier (repro.memory.classify_fast) — compulsory misses are
    # exactly the prev < 0 rows in both
    prev = prev_occurrence(lines).tolist()
    tree = _Fenwick(n)
    for t in range(n):
        p = prev[t]
        if p >= 0:
            # distinct lines touched strictly between p and t: the tree
            # holds a 1 at each line's latest occurrence before t
            out[t] = tree.prefix(t - 1) - tree.prefix(p)
            tree.add(p, -1)
        tree.add(t, 1)
    return out


def reuse_distances(lines: np.ndarray, *,
                    set_mask: int | None = None) -> np.ndarray:
    """LRU stack distance of every access in a line-number stream.

    Returns an int64 array aligned with ``lines``; first touches get
    :data:`INFINITE` (-1).

    With ``set_mask`` the stream is partitioned by cache set — the same
    per-set partition the fast classifier uses — and each access gets its
    *within-set* stack distance: a ``W``-way true-LRU set-associative
    cache hits an access iff that distance is ``< W``, so the per-set
    histogram plays the role the plain one plays for fully-associative
    caches.
    """
    lines = np.asarray(lines, dtype=np.int64)
    if set_mask is None or lines.shape[0] == 0:
        return _stream_distances(lines)
    sets = lines & set_mask
    order = np.argsort(sets, kind="stable")
    s_sorted = sets[order]
    heads = np.ones(s_sorted.shape[0], dtype=bool)
    heads[1:] = s_sorted[1:] != s_sorted[:-1]
    bounds = np.flatnonzero(heads).tolist() + [s_sorted.shape[0]]
    l_sorted = lines[order]
    out = np.empty(lines.shape[0], dtype=np.int64)
    for a, b in zip(bounds, bounds[1:]):
        out[order[a:b]] = _stream_distances(l_sorted[a:b])
    return out


@dataclass(frozen=True)
class ReuseProfile:
    """Reuse-distance histogram of one reference stream."""

    distances: np.ndarray      # per access; -1 = compulsory
    n_lines: int               # distinct lines (working set, lines)

    @property
    def accesses(self) -> int:
        return int(self.distances.shape[0])

    @property
    def compulsory(self) -> int:
        return int((self.distances == INFINITE).sum())

    @property
    def footprint_bytes(self) -> int:
        return self.n_lines * LINE_BYTES

    @cached_property
    def _finite_sorted(self) -> np.ndarray:
        """Sorted finite distances; the curve is read off it by bisection."""
        d = self.distances
        return np.sort(d[d != INFINITE])

    def miss_ratio(self, cache_lines: int) -> float:
        """Miss ratio in a fully-associative LRU cache of ``cache_lines``.

        An access hits iff its distance is finite and ``< cache_lines``,
        so the miss count is compulsory + finite distances beyond the
        capacity — one bisection into the sorted distance distribution.
        """
        if self.accesses == 0:
            return 0.0
        hits = int(np.searchsorted(self._finite_sorted, cache_lines,
                                   side="left"))
        return (self.accesses - hits) / self.accesses

    def miss_ratio_curve(self, sizes_bytes: list[int]) -> dict[int, float]:
        """size (bytes) -> miss ratio, for plotting/working-set analysis."""
        if self.accesses == 0:
            return dict.fromkeys(sizes_bytes, 0.0)
        cls = np.array([max(1, s // LINE_BYTES) for s in sizes_bytes],
                       dtype=np.int64)
        hits = np.searchsorted(self._finite_sorted, cls, side="left")
        return {s: float((self.accesses - h) / self.accesses)
                for s, h in zip(sizes_bytes, hits.tolist())}

    def working_set_bytes(self, target_hit_rate: float = 0.95) -> int:
        """Smallest power-of-two cache size reaching the target hit rate.

        Returns the full footprint if even that cannot reach it
        (compulsory misses bound the achievable hit rate).
        """
        if not 0 < target_hit_rate < 1:
            raise TraceError("target hit rate must be in (0, 1)")
        size = LINE_BYTES
        limit = max(LINE_BYTES, self.footprint_bytes * 2)
        while size <= limit:
            if 1.0 - self.miss_ratio(size // LINE_BYTES) >= target_hit_rate:
                return size
            size *= 2
        return self.footprint_bytes


def line_stream(trace: TraceBuffer, *, coalesce_gathers: bool = True
                ) -> np.ndarray:
    """Program-order 64-byte line reference stream of a trace."""
    shift = log2_int(LINE_BYTES)
    chunks: list[np.ndarray] = []
    for rec in trace:
        if isinstance(rec, ScalarBlock):
            if rec.n_mem_ops:
                chunks.append(rec.mem_addrs >> shift)
        elif isinstance(rec, VectorInstr) and rec.op is VOpClass.MEM:
            chunks.append(_coalesce_lines(rec.addrs, rec.pattern,
                                          coalesce_gathers))
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


def profile_trace(trace: TraceBuffer, **kwargs) -> ReuseProfile:
    """Reuse profile of a recorded trace's memory reference stream."""
    lines = line_stream(trace, **kwargs)
    return ReuseProfile(
        distances=reuse_distances(lines),
        # distinct lines = first touches; same accounting the classifier
        # uses for compulsory misses
        n_lines=int(first_touch_mask(lines).sum()) if lines.size else 0,
    )
