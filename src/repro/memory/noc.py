"""2D-mesh network-on-chip model (EXTOLL-like, 2x2 in the FPGA-SDV).

The core+VPU tile injects at node (0,0); the ``b``-th L2HN bank sits at mesh
node ``b`` in row-major order (the paper instantiates four L2HN on the four
nodes of the 2x2 mesh). Routing is dimension-ordered (XY), so the hop count
between two nodes is the Manhattan distance; latency per message is
``inject + hops * hop_cycles`` each way.

The NoC in this model contributes *latency*; throughput limits live in the
Bandwidth Limiter in front of DRAM (the FPGA NoC is never the bottleneck at
the emulated 50 MHz — DDR4 runs at 333 MHz, Section 2.2).
"""

from __future__ import annotations

import numpy as np

from repro.config import NocConfig
from repro.errors import ConfigError


class MeshNoc:
    """XY-routed 2D mesh; computes hop counts and one-way message latency."""

    def __init__(self, config: NocConfig) -> None:
        config.validate()
        self.config = config
        self.core_node = 0  # row-major node id of the core+VPU tile
        self.reset_stats()

    def reset_stats(self) -> None:
        self.messages = 0           # messages recorded since reset
        self.total_hops = 0         # hop sum across recorded messages
        self.latency_cycles = 0.0   # latency sum across recorded messages

    def record_message(self, src: int, dst: int) -> int:
        """Count one message and return its one-way latency (event engine
        calls this per traversal so NoC traffic shows up in run stats)."""
        hops = self.hops(src, dst)
        lat = self.config.inject_cycles + hops * self.config.hop_cycles
        self.messages += 1
        self.total_hops += hops
        self.latency_cycles += lat
        return lat

    @property
    def stats(self) -> dict:
        """Message accounting since the last :meth:`reset_stats`."""
        return {
            "messages": self.messages,
            "total_hops": self.total_hops,
            "latency_cycles": self.latency_cycles,
        }

    def node_xy(self, node: int) -> tuple[int, int]:
        """(col, row) coordinates of a row-major node id."""
        if not 0 <= node < self.config.nodes:
            raise ConfigError(
                f"node {node} outside mesh of {self.config.nodes} nodes"
            )
        return node % self.config.mesh_cols, node // self.config.mesh_cols

    def hops(self, src: int, dst: int) -> int:
        """Manhattan (XY-routing) hop count between two nodes."""
        sx, sy = self.node_xy(src)
        dx, dy = self.node_xy(dst)
        return abs(sx - dx) + abs(sy - dy)

    def hops_to_bank(self, bank: int, banks: int) -> int:
        """Hops from the core tile to L2 bank ``bank`` (banks are placed on
        the first ``banks`` mesh nodes in row-major order)."""
        if not 0 <= bank < banks:
            raise ConfigError(f"bank {bank} out of range ({banks} banks)")
        if banks > self.config.nodes:
            raise ConfigError(
                f"{banks} banks do not fit a {self.config.nodes}-node mesh"
            )
        return self.hops(self.core_node, bank)

    def one_way_latency(self, src: int, dst: int) -> int:
        """Cycles for one message from ``src`` to ``dst``."""
        return self.config.inject_cycles + self.hops(src, dst) * self.config.hop_cycles

    def round_trip_latency(self, bank: int, banks: int) -> int:
        """Request+response latency between the core tile and a bank."""
        one_way = self.one_way_latency(self.core_node, bank % self.config.nodes)
        if bank >= banks:
            raise ConfigError(f"bank {bank} out of range ({banks} banks)")
        return 2 * one_way

    def bank_latencies(self, banks: int) -> np.ndarray:
        """Round-trip latency per bank, as an array (used vectorized)."""
        return np.array(
            [self.round_trip_latency(b, banks) for b in range(banks)],
            dtype=np.int64,
        )
