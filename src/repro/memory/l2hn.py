"""Shared L2 cache + MESI home node (L2HN) — the purple block of Figure 1.

The FPGA-SDV instantiates four L2HN banks on the 2x2 mesh; lines are
interleaved across banks by low line-address bits. Each bank pairs a slice
of the shared L2 with a MESI-based coherence home node. With a single
core+VPU agent (the configuration measured in the paper) no invalidation
traffic ever flows, but the directory states are tracked so the model
extends to multi-agent setups and so tests can assert protocol invariants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.config import L2Config
from repro.errors import ConfigError
from repro.memory.cache import CacheStats, SetAssocCache
from repro.util.mathx import log2_int
from repro.util.units import LINE_BYTES


class MesiState(enum.Enum):
    """Directory state of a line at its home node."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"


@dataclass
class L2hnStats:
    """Aggregated over all banks, plus a per-bank access histogram."""

    per_bank_accesses: list[int] = field(default_factory=list)
    directory_transitions: int = 0

    def bank_imbalance(self) -> float:
        """max/mean per-bank access ratio (1.0 = perfectly balanced)."""
        if not self.per_bank_accesses or sum(self.per_bank_accesses) == 0:
            return 1.0
        mean = sum(self.per_bank_accesses) / len(self.per_bank_accesses)
        return max(self.per_bank_accesses) / mean if mean else 1.0


class L2HomeNode:
    """Banked shared L2 with a MESI-lite directory (single requesting agent)."""

    def __init__(self, config: L2Config) -> None:
        config.validate()
        self.config = config
        self.bank_shift = log2_int(LINE_BYTES)
        self.bank_mask = config.banks - 1
        self.bank_bits = log2_int(config.banks)
        self.banks = [
            SetAssocCache(
                config.bank_bytes,
                config.ways,
                name=f"l2-bank{b}",
            )
            for b in range(config.banks)
        ]
        self.stats = L2hnStats(per_bank_accesses=[0] * config.banks)
        # directory: line -> MesiState for lines the single agent holds
        self._directory: dict[int, MesiState] = {}

    # -- address mapping ------------------------------------------------------

    def bank_of_addr(self, addr: int) -> int:
        """Bank index of a byte address (line-interleaved)."""
        return (addr >> self.bank_shift) & self.bank_mask

    def bank_of_line(self, line: int) -> int:
        return line & self.bank_mask

    def banks_of_lines(self, lines: np.ndarray) -> np.ndarray:
        """Vectorized bank mapping for a batch of line numbers."""
        return np.asarray(lines, dtype=np.int64) & self.bank_mask

    # -- access ----------------------------------------------------------------

    def access_line(self, line: int, *, write: bool = False
                    ) -> tuple[bool, int | None]:
        """Access one line; returns ``(hit, dirty_victim_line_or_None)``.

        A dirty victim means one writeback transaction to DRAM. The MESI
        directory also advances: a read fill installs the line Exclusive
        (sole agent), a write upgrades to Modified; an evicted line drops to
        Invalid.
        """
        bank = self.bank_of_line(line)
        self.stats.per_bank_accesses[bank] += 1
        # banks index their sets with the line bits ABOVE the interleave
        # bits, so every set of every bank is usable
        hit, victim_local, victim_dirty = self.banks[bank].access_line(
            line >> self.bank_bits, write=write
        )

        prev = self._directory.get(line, MesiState.INVALID)
        new = MesiState.MODIFIED if write else (
            prev if prev is not MesiState.INVALID else MesiState.EXCLUSIVE
        )
        if new is not prev:
            self._directory[line] = new
            self.stats.directory_transitions += 1
        victim = None
        if victim_local is not None:
            victim = (victim_local << self.bank_bits) | bank
            if victim in self._directory:
                del self._directory[victim]
                self.stats.directory_transitions += 1
            if not victim_dirty:
                victim = None  # clean drop: no DRAM transaction
        return hit, victim

    def writeback_line(self, line: int) -> int | None:
        """Absorb a dirty writeback from the level above (full-line write).

        No fill from DRAM is needed; returns a dirty victim line (one DRAM
        write) if installing the writeback evicted one.
        """
        bank = self.bank_of_line(line)
        victim_local, victim_dirty = self.banks[bank].install_line(
            line >> self.bank_bits, dirty=True
        )
        self._directory[line] = MesiState.MODIFIED
        if victim_local is None:
            return None
        victim = (victim_local << self.bank_bits) | bank
        if victim in self._directory:
            del self._directory[victim]
        return victim if victim_dirty else None

    def directory_state(self, line: int) -> MesiState:
        return self._directory.get(line, MesiState.INVALID)

    def flush(self) -> int:
        """Invalidate all banks; returns dirty lines dropped."""
        self._directory.clear()
        return sum(bank.flush() for bank in self.banks)

    # -- stats ------------------------------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        total = CacheStats()
        for bank in self.banks:
            total = total.merge(bank.stats)
        return total

    @property
    def total_bytes(self) -> int:
        return self.config.total_bytes

    def validate_single_agent_invariant(self) -> None:
        """With one agent, no line may be SHARED (nobody to share with)."""
        bad = [l for l, s in self._directory.items() if s is MesiState.SHARED]
        if bad:
            raise ConfigError(
                f"single-agent L2HN has SHARED lines: {bad[:4]}..."
            )
