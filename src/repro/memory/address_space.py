"""Flat byte-addressable memory image with a bump allocator.

Kernels allocate NumPy arrays *inside* the simulated physical address space.
Functional execution then works on zero-copy views of one backing buffer
while the recorded addresses are real simulated physical addresses — exactly
what the cache/NoC/DRAM models need.

Design notes
------------
* The backing store is a single ``np.uint8`` buffer; ``alloc`` returns an
  :class:`Allocation` whose ``.view`` is a dtype-reinterpreted slice of it.
  Views, not copies (see the scientific-python optimization guide): kernel
  reads/writes go straight to the image.
* Allocations are line-aligned (64 B) by default so the first element of an
  array never straddles a cache line, matching how the paper's benchmarks
  allocate with ``posix_memalign``.
* A bump pointer is enough — experiments build a workload once and run it;
  there is no free list. ``reset`` recycles the whole image between runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AccessError, AllocationError
from repro.util.units import LINE_BYTES, fmt_bytes


@dataclass(frozen=True)
class Allocation:
    """One array placed in the simulated address space."""

    name: str
    base: int
    nbytes: int
    itemsize: int
    view: np.ndarray

    @property
    def end(self) -> int:
        """One past the last byte of the allocation."""
        return self.base + self.nbytes

    def addr(self, index: int | np.ndarray) -> int | np.ndarray:
        """Simulated address of element ``index`` (scalar or vectorized).

        Bounds are checked against the allocation so a buggy kernel fails
        loudly instead of recording addresses into a neighbouring array.
        """
        nelem = self.nbytes // self.itemsize
        if type(index) is np.ndarray and index.ndim == 1:
            # hot path: trace emitters call this once per address vector
            if index.size:
                lo, hi = index.min(), index.max()
                if lo < 0 or hi >= nelem:
                    raise AccessError(
                        f"index out of range for '{self.name}' "
                        f"(0..{nelem - 1}): min={lo}, max={hi}"
                    )
            out = index * self.itemsize
            out += self.base
            return out if out.dtype == np.int64 else out.astype(np.int64)
        idx = np.asarray(index)
        if idx.size and (idx.min() < 0 or idx.max() >= nelem):
            raise AccessError(
                f"index out of range for '{self.name}' "
                f"(0..{nelem - 1}): min={idx.min()}, max={idx.max()}"
            )
        out = self.base + idx * self.itemsize
        if np.isscalar(index) or idx.ndim == 0:
            return int(out)
        return out.astype(np.int64)


class MemoryImage:
    """Simulated physical memory: backing buffer + bump allocator."""

    def __init__(self, size_bytes: int, *, base_address: int = 0x1000) -> None:
        if size_bytes <= 0:
            raise AllocationError(f"memory size must be positive, got {size_bytes}")
        self.size_bytes = int(size_bytes)
        self.base_address = int(base_address)
        self._buf = np.zeros(self.size_bytes, dtype=np.uint8)
        self._cursor = 0
        self._allocs: dict[str, Allocation] = {}

    # -- allocation ---------------------------------------------------------

    def alloc(
        self,
        name: str,
        shape_or_data: int | tuple[int, ...] | np.ndarray,
        dtype: np.dtype | type | None = None,
        *,
        align: int = LINE_BYTES,
    ) -> Allocation:
        """Allocate an array in the image, optionally initializing it.

        ``shape_or_data`` may be a shape (then ``dtype`` is required) or an
        existing ndarray whose contents are copied in.
        """
        if name in self._allocs:
            raise AllocationError(f"allocation name '{name}' already in use")
        if align <= 0 or (align & (align - 1)):
            raise AllocationError(f"alignment must be a power of two, got {align}")

        if isinstance(shape_or_data, np.ndarray):
            data = np.ascontiguousarray(shape_or_data)
            shape = data.shape
            dt = data.dtype
        else:
            if dtype is None:
                raise AllocationError("dtype required when allocating by shape")
            data = None
            shape = (
                (int(shape_or_data),)
                if isinstance(shape_or_data, (int, np.integer))
                else tuple(int(s) for s in shape_or_data)
            )
            dt = np.dtype(dtype)

        nbytes = int(np.prod(shape)) * dt.itemsize
        start = -(-self._cursor // align) * align  # round up
        if start + nbytes > self.size_bytes:
            raise AllocationError(
                f"out of simulated memory allocating '{name}' "
                f"({fmt_bytes(nbytes)}; {fmt_bytes(self.size_bytes - self._cursor)}"
                " remaining)"
            )
        self._cursor = start + nbytes

        view = self._buf[start : start + nbytes].view(dt).reshape(shape)
        if data is not None:
            view[...] = data
        alloc =Allocation(
            name=name,
            base=self.base_address + start,
            nbytes=nbytes,
            itemsize=dt.itemsize,
            view=view,
        )
        self._allocs[name] = alloc
        return alloc

    def reset(self) -> None:
        """Drop all allocations and zero the image (reuse between runs)."""
        self._buf[:] = 0
        self._cursor = 0
        self._allocs.clear()

    # -- inspection ---------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._allocs

    def __getitem__(self, name: str) -> Allocation:
        try:
            return self._allocs[name]
        except KeyError:
            raise AccessError(f"no allocation named '{name}'") from None

    @property
    def allocations(self) -> tuple[Allocation, ...]:
        return tuple(self._allocs.values())

    @property
    def used_bytes(self) -> int:
        return self._cursor

    def owner_of(self, addr: int) -> Allocation | None:
        """Allocation containing simulated address ``addr``, if any."""
        for alloc in self._allocs.values():
            if alloc.base <= addr < alloc.end:
                return alloc
        return None

    def check_addresses(self, addrs: np.ndarray) -> None:
        """Validate a batch of simulated addresses against the image bounds."""
        a = np.asarray(addrs)
        if a.size == 0:
            return
        lo, hi = int(a.min()), int(a.max())
        if lo < self.base_address or hi >= self.base_address + self.size_bytes:
            raise AccessError(
                f"address batch [{lo:#x}, {hi:#x}] outside image "
                f"[{self.base_address:#x}, "
                f"{self.base_address + self.size_bytes:#x})"
            )
