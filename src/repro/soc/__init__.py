"""SoC top level: the emulated FPGA-SDV as one object."""

from repro.soc.sdv import FpgaSdv, Session
from repro.soc.hwcounters import HwCounters

__all__ = ["FpgaSdv", "Session", "HwCounters"]
