"""Hardware counters of the emulated system.

The paper's measurements read the CPU cycle counter CSR (Section 3.2) and
average five runs. Our simulator is deterministic, so one run suffices; the
counter object still exposes the same reading discipline (snapshot/delta,
:meth:`mean_cycles`/:meth:`stddev` over the run history) so measurement
code reads like the paper's.

Beyond the raw CSRs, the counters derive the Section 3.2 characterization
metrics (vector instruction fraction, achieved memory bytes/cycle) and —
when a run carried a :class:`repro.obs.attribution.CycleAttribution` —
accumulate the attribution buckets, so ``repro-sdv headline`` and
``characterize`` can report *why* the cycles were spent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.engine.results import CycleReport
from repro.util.units import LINE_BYTES


@dataclass
class HwCounters:
    """Cycle counter + retirement counters accumulated across runs."""

    cycles: float = 0.0
    scalar_instret: int = 0
    vector_instret: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    history: list[float] = field(default_factory=list)
    #: attribution-bucket cycle sums across absorbed runs (empty until a
    #: run carrying a CycleAttribution is absorbed).
    buckets: dict = field(default_factory=dict)

    def absorb(self, report: CycleReport, *, scalar_instret: int = 0,
               vector_instret: int = 0) -> None:
        """Accumulate one run's counters."""
        self.cycles += report.cycles
        self.history.append(report.cycles)
        self.scalar_instret += scalar_instret
        self.vector_instret += vector_instret
        self.dram_reads += report.dram_reads
        self.dram_writes += report.dram_writes
        if report.attribution is not None:
            self.record_attribution(report.attribution)

    def record_attribution(self, attribution) -> None:
        """Fold one run's attribution buckets into the accumulated view."""
        for name, value in attribution.buckets.items():
            self.buckets[name] = self.buckets.get(name, 0.0) + value

    # -- reading discipline (paper Section 3.2) ---------------------------

    def snapshot(self) -> float:
        """Read the cycle CSR."""
        return self.cycles

    @staticmethod
    def delta(before: float, after: float) -> float:
        """Elapsed cycles between two snapshots."""
        return after - before

    @property
    def runs(self) -> int:
        """Number of absorbed runs."""
        return len(self.history)

    def mean_cycles(self) -> float:
        """Mean cycle count over the absorbed runs (the paper averages 5)."""
        return self.cycles / len(self.history) if self.history else 0.0

    def stddev(self) -> float:
        """Sample standard deviation of the run history (0.0 below n=2)."""
        n = len(self.history)
        if n < 2:
            return 0.0
        mean = self.cycles / n
        var = sum((c - mean) ** 2 for c in self.history) / (n - 1)
        return math.sqrt(var)

    # -- derived Section 3.2 metrics --------------------------------------

    @property
    def instret(self) -> int:
        """Total retired instructions (scalar + vector)."""
        return self.scalar_instret + self.vector_instret

    @property
    def vector_fraction(self) -> float:
        """Fraction of retired instructions that were vector instructions."""
        total = self.instret
        return self.vector_instret / total if total else 0.0

    @property
    def achieved_bytes_per_cycle(self) -> float:
        """DRAM traffic rate actually sustained across the absorbed runs."""
        if self.cycles <= 0:
            return 0.0
        return (self.dram_reads + self.dram_writes) * LINE_BYTES / self.cycles

    def bucket_fraction(self, name: str) -> float:
        """Accumulated share of one attribution bucket (0.0 if unknown)."""
        if self.cycles <= 0:
            return 0.0
        return self.buckets.get(name, 0.0) / self.cycles
