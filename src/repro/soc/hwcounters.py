"""Hardware counters of the emulated system.

The paper's measurements read the CPU cycle counter CSR (Section 3.2) and
average five runs. Our simulator is deterministic, so one run suffices; the
counter object still exposes the same reading discipline (snapshot/delta)
so measurement code reads like the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.results import CycleReport


@dataclass
class HwCounters:
    """Cycle counter + retirement counters accumulated across runs."""

    cycles: float = 0.0
    scalar_instret: int = 0
    vector_instret: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    history: list[float] = field(default_factory=list)

    def absorb(self, report: CycleReport, *, scalar_instret: int = 0,
               vector_instret: int = 0) -> None:
        """Accumulate one run's counters."""
        self.cycles += report.cycles
        self.history.append(report.cycles)
        self.scalar_instret += scalar_instret
        self.vector_instret += vector_instret
        self.dram_reads += report.dram_reads
        self.dram_writes += report.dram_writes

    def snapshot(self) -> float:
        """Read the cycle CSR."""
        return self.cycles

    @staticmethod
    def delta(before: float, after: float) -> float:
        """Elapsed cycles between two snapshots."""
        return after - before
