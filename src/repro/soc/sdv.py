"""The FPGA Software Development Vehicle, as one configurable object.

:class:`FpgaSdv` plays the role of the VCU128 board + host flow of the
paper's Figure 2: you "program" it with an :class:`repro.config.SdvConfig`
(the bitstream), reconfigure the three runtime knobs without re-programming
(max VL CSR, Latency Controller, Bandwidth Limiter), open a
:class:`Session` to run code on it, and read cycle counts back.

Classification caching: the hit/miss classification of a trace depends only
on the cache geometry, never on the latency/bandwidth knobs, so ``time()``
caches the classified trace *on the trace object* and re-times it cheaply
for every sweep point — the moral equivalent of re-running the same binary
on the FPGA with different Latency Controller settings.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.config import SdvConfig
from repro.engine.event_sim import simulate_events
from repro.engine.fast_sim import simulate_fast
from repro.engine.results import CycleReport
from repro.errors import ConfigError
from repro.isa.csr import CsrFile
from repro.isa.scalar_ctx import ScalarContext
from repro.isa.vector_ctx import VectorContext
from repro.memory.address_space import MemoryImage
from repro.memory.classify import ClassifiedTrace, classify_trace
from repro.soc.hwcounters import HwCounters
from repro.trace.events import TraceBuffer

_ENGINES = {"fast": simulate_fast, "event": simulate_events}


@dataclass
class Session:
    """One program running on the SDV: memory image + ISA contexts."""

    mem: MemoryImage
    trace: TraceBuffer
    scalar: ScalarContext
    vector: VectorContext

    def seal(self) -> TraceBuffer:
        """Flush pending scalar state and freeze the trace."""
        self.scalar.flush()
        return self.trace.seal()


class FpgaSdv:
    """The emulated RISC-V + VPU + NoC + L2HN system."""

    def __init__(self, config: SdvConfig | None = None, *,
                 engine: str = "fast") -> None:
        self.config = (config if config is not None else SdvConfig()).validate()
        if engine not in _ENGINES:
            raise ConfigError(
                f"unknown engine '{engine}' (choose from {sorted(_ENGINES)})"
            )
        self.engine = engine
        self.counters = HwCounters()

    # ------------------------------------------------------------- knobs

    def configure(self, *, max_vl: int | None = None,
                  extra_latency: int | None = None,
                  bandwidth_bpc: int | None = None) -> "FpgaSdv":
        """Set any of the three runtime knobs (None = leave unchanged).

        Mirrors the register pokes the host performs over PCIe in the real
        setup; no "re-synthesis" (object rebuild) happens.
        """
        cfg = self.config
        if max_vl is not None:
            cfg = cfg.with_max_vl(max_vl)
        if extra_latency is not None:
            cfg = cfg.with_extra_latency(extra_latency)
        if bandwidth_bpc is not None:
            cfg = cfg.with_bandwidth(bandwidth_bpc)
        self.config = cfg
        return self

    @property
    def max_vl(self) -> int:
        return self.config.vpu.max_vl

    @property
    def extra_latency(self) -> int:
        return self.config.mem.extra_latency_cycles

    @property
    def bandwidth_bpc(self) -> float:
        return self.config.mem.bytes_per_cycle_limit

    # ----------------------------------------------------------- sessions

    def session(self) -> Session:
        """Fresh memory image + trace + ISA contexts at current max VL."""
        mem = MemoryImage(self.config.memory_bytes)
        trace = TraceBuffer()
        csr = CsrFile(self.config.vpu.max_vl)
        return Session(
            mem=mem,
            trace=trace,
            scalar=ScalarContext(mem, trace),
            vector=VectorContext(mem, trace, csr),
        )

    # ------------------------------------------------------------- timing

    def _geometry_key(self) -> tuple:
        c = self.config
        return (
            c.core.l1d_bytes, c.core.l1d_ways, c.core.l1_prefetch_depth,
            c.l2.banks, c.l2.bank_bytes, c.l2.ways,
            c.vpu.coalesce_gathers,
        )

    def classify(self, trace: TraceBuffer) -> ClassifiedTrace:
        """Classify (or fetch the cached classification of) a sealed trace."""
        cache = getattr(trace, "_classified_cache", None)
        if cache is None:
            cache = {}
            setattr(trace, "_classified_cache", cache)
        key = self._geometry_key()
        ct = cache.get(key)
        if ct is None:
            ct = classify_trace(trace, self.config)
            cache[key] = ct
        # re-bind the current knob settings (latency/bandwidth/VPU timing)
        return dataclasses.replace(ct, config=self.config)

    def time(self, trace: TraceBuffer, *, engine: str | None = None
             ) -> CycleReport:
        """Cycle-count a sealed trace under the current knob settings."""
        ct = self.classify(trace)
        report = _ENGINES[engine or self.engine](ct)
        self.counters.absorb(report)
        return report

    def run(self, build_fn, *args, engine: str | None = None, **kwargs):
        """Convenience: open a session, run ``build_fn(session, ...)``,
        seal, and time.

        ``build_fn`` is any callable that executes a kernel against the
        session's ISA contexts and returns its functional result. Returns
        ``(result, CycleReport)``.
        """
        sess = self.session()
        result = build_fn(sess, *args, **kwargs)
        trace = sess.seal()
        return result, self.time(trace, engine=engine)
