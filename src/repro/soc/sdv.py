"""The FPGA Software Development Vehicle, as one configurable object.

:class:`FpgaSdv` plays the role of the VCU128 board + host flow of the
paper's Figure 2: you "program" it with an :class:`repro.config.SdvConfig`
(the bitstream), reconfigure the three runtime knobs without re-programming
(max VL CSR, Latency Controller, Bandwidth Limiter), open a
:class:`Session` to run code on it, and read cycle counts back.

Classification caching: the hit/miss classification of a trace depends only
on the cache geometry, never on the latency/bandwidth knobs, so ``time()``
caches the classified trace *on the trace object* and re-times it cheaply
for every sweep point — the moral equivalent of re-running the same binary
on the FPGA with different Latency Controller settings.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from collections.abc import Sequence

import numpy as np

from repro.config import SdvConfig
from repro.engine import ENGINES
from repro.engine.batch_sim import batch_cycles, simulate_batch
from repro.engine.lower import LoweredTrace, knob_free_config, lower_trace
from repro.engine.results import CycleReport
from repro.errors import ConfigError
from repro.isa.csr import CsrFile
from repro.isa.scalar_ctx import ScalarContext
from repro.isa.vector_ctx import VectorContext
from repro.memory.address_space import MemoryImage
from repro.memory.classify import (
    KIND_SCALAR,
    KIND_VARITH,
    KIND_VMEM,
    ClassifiedTrace,
)
from repro.memory.classify_fast import CLASSIFIERS, default_classifier
from repro.soc.hwcounters import HwCounters
from repro.trace.events import TraceBuffer


def _count_cache(name: str) -> None:
    """Opt-in cache hit/miss accounting (repro.obs.engine_stats)."""
    from repro.obs.engine_stats import get_engine_stats, \
        introspection_enabled

    if introspection_enabled():
        get_engine_stats().count(name)


@dataclass
class Session:
    """One program running on the SDV: memory image + ISA contexts."""

    mem: MemoryImage
    trace: TraceBuffer
    scalar: ScalarContext
    vector: VectorContext

    def seal(self) -> TraceBuffer:
        """Flush pending scalar state and freeze the trace."""
        self.scalar.flush()
        return self.trace.seal()


class FpgaSdv:
    """The emulated RISC-V + VPU + NoC + L2HN system."""

    def __init__(self, config: SdvConfig | None = None, *,
                 engine: str = "fast",
                 classify: str | None = None) -> None:
        self.config = (config if config is not None else SdvConfig()).validate()
        if engine not in ENGINES:
            raise ConfigError(
                f"unknown engine '{engine}' (choose from {sorted(ENGINES)})"
            )
        if classify is not None and classify not in CLASSIFIERS:
            raise ConfigError(
                f"unknown classifier '{classify}' "
                f"(choose from {sorted(CLASSIFIERS)})"
            )
        self.engine = engine
        # None = follow the module-wide default (set_default_classifier),
        # resolved at each classify() call so CLI overrides reach existing
        # boards too
        self._classify_name = classify
        self.counters = HwCounters()

    # ------------------------------------------------------------- knobs

    def configure(self, *, max_vl: int | None = None,
                  extra_latency: int | None = None,
                  bandwidth_bpc: int | None = None) -> "FpgaSdv":
        """Set any of the three runtime knobs (None = leave unchanged).

        Mirrors the register pokes the host performs over PCIe in the real
        setup; no "re-synthesis" (object rebuild) happens.
        """
        cfg = self.config
        if max_vl is not None:
            cfg = cfg.with_max_vl(max_vl)
        if extra_latency is not None:
            cfg = cfg.with_extra_latency(extra_latency)
        if bandwidth_bpc is not None:
            cfg = cfg.with_bandwidth(bandwidth_bpc)
        self.config = cfg
        return self

    @property
    def max_vl(self) -> int:
        return self.config.vpu.max_vl

    @property
    def extra_latency(self) -> int:
        return self.config.mem.extra_latency_cycles

    @property
    def bandwidth_bpc(self) -> float:
        return self.config.mem.bytes_per_cycle_limit

    # ----------------------------------------------------------- sessions

    def session(self) -> Session:
        """Fresh memory image + trace + ISA contexts at current max VL."""
        mem = MemoryImage(self.config.memory_bytes)
        trace = TraceBuffer()
        csr = CsrFile(self.config.vpu.max_vl)
        return Session(
            mem=mem,
            trace=trace,
            scalar=ScalarContext(mem, trace),
            vector=VectorContext(mem, trace, csr),
        )

    # ------------------------------------------------------------- timing

    def geometry_key(self) -> tuple:
        """The config fields classification depends on (cache-key tuple)."""
        c = self.config
        return (
            c.core.l1d_bytes, c.core.l1d_ways, c.core.l1_prefetch_depth,
            c.l2.banks, c.l2.bank_bytes, c.l2.ways,
            c.vpu.coalesce_gathers,
        )

    # backwards-compatible alias
    _geometry_key = geometry_key

    def geometry_fingerprint(self) -> str:
        """12-hex digest of :meth:`geometry_key` — the cache-geometry
        fingerprint the classified trace sidecar and the shm classified
        plane key their payloads on."""
        import hashlib

        return hashlib.sha256(
            repr(self.geometry_key()).encode()).hexdigest()[:12]

    def has_classification(self, trace: TraceBuffer) -> bool:
        """True when ``trace`` already carries a classification for the
        current engine + geometry (memoized, seeded, or attached)."""
        cache = getattr(trace, "_classified_cache", None)
        return (cache is not None
                and (self.classify_name, *self._geometry_key()) in cache)

    @property
    def classify_name(self) -> str:
        """The active classification engine (``"stack"`` or ``"walk"``)."""
        return self._classify_name or default_classifier()

    def classify(self, trace: TraceBuffer) -> ClassifiedTrace:
        """Classify (or fetch the cached classification of) a sealed trace.

        Both engines are bit-identical, but the cache key still carries the
        engine name so equality tests (and a hypothetical divergence) never
        read one engine's result through the other's selector.
        """
        cache = getattr(trace, "_classified_cache", None)
        if cache is None:
            cache = {}
            setattr(trace, "_classified_cache", cache)
        name = self.classify_name
        key = (name, *self._geometry_key())
        ct = cache.get(key)
        if ct is None:
            _count_cache("classify_cache.misses")
            ct = CLASSIFIERS[name](trace, self.config)
            cache[key] = ct
        else:
            _count_cache("classify_cache.hits")
        # re-bind the current knob settings (latency/bandwidth/VPU timing)
        return dataclasses.replace(ct, config=self.config)

    def seed_classification(self, trace: TraceBuffer,
                            ct: ClassifiedTrace) -> None:
        """Pre-load the classification cache with an externally computed
        result (trace-cache sidecar reload or a shm classified-plane
        attach), keyed under the current engine + geometry."""
        cache = getattr(trace, "_classified_cache", None)
        if cache is None:
            cache = {}
            setattr(trace, "_classified_cache", cache)
        cache[(self.classify_name, *self._geometry_key())] = ct

    def lower(self, trace: TraceBuffer) -> LoweredTrace:
        """Lower (or fetch the cached lowering of) a sealed trace.

        Like classification, lowering is knob-independent, so it is cached
        on the trace object keyed by the knob-free config and amortizes
        across every sweep point and every batch call.
        """
        cache = getattr(trace, "_lowered_cache", None)
        if cache is None:
            cache = {}
            setattr(trace, "_lowered_cache", cache)
        ct = self.classify(trace)
        key = knob_free_config(self.config)
        lowered = cache.get(key)
        if lowered is None:
            _count_cache("lower_cache.misses")
            lowered = lower_trace(ct)
            cache[key] = lowered
        else:
            _count_cache("lower_cache.hits")
        return lowered

    def _instret(self, ct: ClassifiedTrace) -> tuple[int, int]:
        """(scalar, vector) retired-instruction counts of a trace."""
        rows = ct.rows
        kinds = rows["kind"]
        scalar_mask = kinds == KIND_SCALAR
        scalar = int(rows["n_alu"][scalar_mask].sum()
                     + rows["n_mem"][scalar_mask].sum())
        vector = int(((kinds == KIND_VARITH) | (kinds == KIND_VMEM)).sum())
        return scalar, vector

    def time(self, trace: TraceBuffer, *, engine: str | None = None
             ) -> CycleReport:
        """Cycle-count a sealed trace under the current knob settings."""
        name = engine or self.engine
        ct = self.classify(trace)
        if name == "batch":
            # reuse the trace-level lowered cache instead of re-lowering
            report = simulate_batch(self.lower(trace), [self.config])[0]
        else:
            report = ENGINES[name](ct)
        scalar, vector = self._instret(ct)
        self.counters.absorb(report, scalar_instret=scalar,
                             vector_instret=vector)
        return report

    def attribute(self, trace: TraceBuffer, *, engine: str | None = None):
        """Cycle attribution of a sealed trace at the current knobs.

        Returns a :class:`repro.obs.attribution.CycleAttribution` whose
        buckets sum bit-exactly to the run's cycle total; the buckets are
        also folded into :attr:`counters`.
        """
        from repro.obs.attribution import attribute  # avoid import cycle

        name = engine or self.engine
        ct = self.classify(trace)
        att = attribute(ct, engine=name, lowered=self.lower(trace))
        self.counters.record_attribution(att)
        return att

    def time_many(self, trace: TraceBuffer, configs: Sequence[SdvConfig],
                  *, engine: str | None = None,
                  reports: bool = True) -> list[CycleReport] | np.ndarray:
        """Time one sealed trace at many knob settings in one call.

        With ``engine="batch"`` the trace is lowered once and every config
        is timed in a single vectorized walk; ``fast``/``event`` fall back
        to one run per config (same results — the batch engine matches
        ``fast`` bit-for-bit — but K trace walks instead of one). With
        ``reports=False`` the batch path returns a bare float64 cycles
        vector — no per-point :class:`CycleReport` objects are built (the
        compact sweep path) and hardware counters are not updated.
        """
        configs = list(configs)
        name = engine or self.engine
        if name == "batch":
            lowered = self.lower(trace)
            if not reports:
                return batch_cycles(lowered, configs)
            out = simulate_batch(lowered, configs)
            for report in out:
                self.counters.absorb(report)
            return out
        saved = self.config
        try:
            out = []
            for cfg in configs:
                self.config = cfg.validate()
                out.append(self.time(trace, engine=name))
        finally:
            self.config = saved
        if not reports:
            return np.array([r.cycles for r in out])
        return out

    def run(self, build_fn, *args, engine: str | None = None, **kwargs):
        """Convenience: open a session, run ``build_fn(session, ...)``,
        seal, and time.

        ``build_fn`` is any callable that executes a kernel against the
        session's ISA contexts and returns its functional result. Returns
        ``(result, CycleReport)``.
        """
        sess = self.session()
        result = build_fn(sess, *args, **kwargs)
        trace = sess.seal()
        return result, self.time(trace, engine=engine)
