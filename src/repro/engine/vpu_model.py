"""Vitruvius-like VPU cost model.

Occupancy (execution-resource busy time) per vector instruction class, for
``lanes`` parallel 64-bit lanes:

* ARITH — fully pipelined: ``startup + ceil(vl/lanes)``;
* ARITH_HEAVY — iterative FDIV/FSQRT: each lane-group takes ``HEAVY_CPE``
  cycles (not pipelined across elements in a lane);
* REDUCE — lane-local partial sums, then a ``log2(lanes)`` tree, then the
  scalar drain;
* PERMUTE — element traffic crosses the inter-lane ring twice;
* MASK — operates on mask bits, 64 per cycle per lane-group.

Memory instructions are characterized by three quantities the engines
combine with queueing state:

* ``addr_cycles`` — address-generation/issue occupancy,
* ``first_latency`` — load-to-first-element latency (L2 or DRAM, as
  classified),
* ``service_cycles`` — line-streaming time at the issue/bandwidth rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SdvConfig
from repro.trace.events import VMemPattern, VOpClass
from repro.util.mathx import ceil_div

#: cycles per element-group for non-pipelined FDIV/FSQRT
HEAVY_CPE: int = 8

#: extra cycles for the reduction tree + scalar drain beyond the element pass
REDUCE_TREE_BASE: int = 4

#: pipeline depth of the arithmetic lanes (chaining fill delay)
LANE_PIPE_DEPTH: int = 4


def arith_occupancy(config: SdvConfig, opclass: VOpClass, vl: int) -> float:
    """*Issue occupancy* of one non-memory vector instruction.

    This is how long the instruction keeps the execution pipe busy — the
    throughput cost. Startup/drain is pipeline *latency* and is charged via
    :func:`arith_latency` on the dependency path only: back-to-back
    independent instructions stream through the lanes with no startup gap
    (the pipe is, after all, a pipeline).
    """
    lanes = config.vpu.lanes
    groups = ceil_div(max(vl, 1), lanes)
    if opclass is VOpClass.ARITH:
        return float(max(1, groups))
    if opclass is VOpClass.ARITH_HEAVY:
        return float(groups * HEAVY_CPE)
    if opclass is VOpClass.REDUCE:
        tree = int(np.ceil(np.log2(max(lanes, 2))))
        return float(groups + tree + REDUCE_TREE_BASE)
    if opclass is VOpClass.PERMUTE:
        return float(2 * groups)
    if opclass is VOpClass.MASK:
        return float(max(1, ceil_div(max(vl, 1), lanes * 8)))
    raise ValueError(f"not an occupancy class: {opclass}")


def arith_latency(config: SdvConfig) -> float:
    """Pipeline latency from issue to result visibility (dependency cost)."""
    return float(config.vpu.startup_cycles + LANE_PIPE_DEPTH)


@dataclass(frozen=True)
class VMemCost:
    """Resource view of one vector memory instruction."""

    addr_cycles: float      # AGU/issue occupancy
    first_latency: float    # load-to-first-response
    service_cycles: float   # streaming time for all line requests
    n_lines: int
    n_dram: int             # DRAM transactions (reads + writebacks it caused)

    @property
    def completion_after_start(self) -> float:
        """Cycles from issue to last element, ignoring queue interactions."""
        return self.first_latency + max(self.addr_cycles, self.service_cycles)


def vmem_cost(
    config: SdvConfig,
    *,
    pattern: VMemPattern,
    vl: int,
    active: int,
    n_lines: int,
    dram_reads: int,
    dram_writes: int,
) -> VMemCost:
    """Characterize one vector memory instruction under current knobs.

    ``first_latency`` is the worst level the instruction touches — its last
    element cannot arrive before one full round trip to that level.
    ``service_cycles`` is the line-streaming time: lines issue at the AGU
    rate, bounded by the L2HN's one-line-per-cycle port, and the DRAM
    portion additionally streams through the Bandwidth Limiter window.
    """
    vpu = config.vpu
    mem = config.mem

    if pattern is VMemPattern.INDEXED:
        addr_cycles = active / vpu.gather_issue_per_cycle
    else:
        addr_cycles = n_lines / vpu.stride_issue_per_cycle

    l2_lines = n_lines - dram_reads if n_lines >= dram_reads else 0
    # line return rate from L2 is 1/cycle; DRAM lines stream through the
    # limiter at num/den requests per cycle (writebacks share the channel).
    dram_txns = dram_reads + dram_writes
    dram_stream = dram_txns * mem.bw_den / mem.bw_num
    service = max(float(n_lines), l2_lines + dram_stream)

    if dram_reads > 0:
        first_latency = config.dram_latency
    elif n_lines > 0:
        first_latency = config.l2_hit_latency
    else:
        first_latency = 0.0

    return VMemCost(
        addr_cycles=addr_cycles,
        first_latency=first_latency,
        service_cycles=service,
        n_lines=n_lines,
        n_dram=dram_txns,
    )
