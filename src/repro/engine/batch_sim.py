"""Batch timing engine: every sweep point of one trace in a single walk.

``simulate_fast`` walks the classified trace once *per knob setting*; a
paper sweep calls it 7-49 times per (kernel, implementation) trace. This
engine walks the trace **once for all settings**: the per-record frontier
recurrence is identical at every sweep point, so each machine frontier
(scalar core, arithmetic pipe, AGU, memory queue, line-MSHR pool) becomes a
length-``K`` vector — one element per configuration — and every step of the
recurrence is a NumPy broadcast over that knob axis.

Everything knob-independent was precomputed by :func:`repro.engine.lower.
lower_trace`; per batch call only the latency-proportional and
bandwidth-proportional matrices are materialized (vectorized over records
*and* configs). The arithmetic matches :func:`simulate_fast` operation for
operation, so the two agree bit-for-bit — the agreement tests pin exact
cycle equality on all four kernels.

Configurations in one batch must share everything except the two runtime
sweep knobs (Latency Controller ``extra_latency_cycles`` and Bandwidth
Limiter ``bw_num/bw_den``); :class:`repro.errors.EngineError` otherwise.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.config import SdvConfig
from repro.engine import core_model, vpu_model
from repro.engine.lower import (
    FIRST_DRAM,
    FIRST_L2,
    LKIND_BARRIER,
    LKIND_CSR,
    LKIND_SCALAR,
    LKIND_VARITH,
    LKIND_VMEM,
    LoweredTrace,
    knob_free_config,
    lower_trace,
)
from repro.engine.results import CycleReport
from repro.errors import EngineError
from repro.memory.classify import ClassifiedTrace


def _check_configs(lowered: LoweredTrace,
                   configs: Sequence[SdvConfig]) -> None:
    if not configs:
        raise EngineError("simulate_batch needs at least one config")
    for k, cfg in enumerate(configs):
        if knob_free_config(cfg) != lowered.base_key:
            raise EngineError(
                f"config {k} differs from the lowered trace in more than "
                "the latency/bandwidth knobs; re-lower the trace for it"
            )


def _knob_axes(lowered: LoweredTrace, configs: Sequence[SdvConfig]):
    """The two knob vectors: DRAM latency and limiter window per config."""
    base = lowered.base
    # identical float path to SdvConfig.dram_latency: (l2 + service) + extra
    lat_base = base.l2_hit_latency + base.mem.dram_service_cycles
    lat = np.array([lat_base + c.mem.extra_latency_cycles for c in configs],
                   dtype=np.float64)
    den = np.array([c.mem.bw_den for c in configs], dtype=np.float64)
    num = np.array([c.mem.bw_num for c in configs], dtype=np.float64)
    return lat, den, num


def _walk(lowered: LoweredTrace, lat: np.ndarray, den: np.ndarray,
          num: np.ndarray) -> dict:
    """Run the frontier recurrence once with the knob axis vectorized.

    Returns the end-time vector plus the knob-dependent breakdown pieces.
    """
    K = lat.shape[0]
    n = lowered.n
    base = lowered.base
    vpu = base.vpu
    chaining = vpu.chaining
    ooo = vpu.ooo_mem_issue
    q_depth = vpu.mem_queue_depth
    line_mshrs = vpu.line_mshrs
    pipe_lat = vpu_model.arith_latency(base)
    PIPE = vpu_model.LANE_PIPE_DEPTH
    DISPATCH = core_model.VECTOR_DISPATCH_CYCLES
    VSETVL = core_model.VSETVL_CYCLES
    XFER = core_model.SCALAR_RESULT_TRANSFER_CYCLES

    # knob-dependent per-record matrices, vectorized over (records, K) ----
    bw_win = den / num                                      # cycles per txn
    sc_total = np.maximum(
        lowered.sc_const[:, None]
        + lowered.sc_dram_reads[:, None] * lat[None, :] / lowered.sc_p[:, None],
        lowered.sc_bw_txns[:, None] * den[None, :] / num[None, :],
    )
    vm_service = np.maximum(
        lowered.vm_lines[:, None],
        lowered.vm_l2_lines[:, None]
        + lowered.vm_txns[:, None] * den[None, :] / num[None, :],
    )
    vm_busy = np.maximum(lowered.vm_addr[:, None], vm_service)
    fk = lowered.vm_first_kind[:, None]
    vm_first = np.where(fk == FIRST_DRAM, lat[None, :],
                        np.where(fk == FIRST_L2, base.l2_hit_latency, 0.0))
    vm_mshr_inc = lowered.vm_dram_reads[:, None] * lat[None, :] / line_mshrs
    has_dram = lowered.vm_dram_reads > 0

    # frontiers, one element per config -----------------------------------
    t_scalar = np.zeros(K)
    t_arith = np.zeros(K)
    t_arith_done = np.zeros(K)
    t_agu = np.zeros(K)
    t_mshr = np.zeros(K)
    t_vmem_done = np.zeros(K)

    start = np.zeros((n, K))
    completion = np.zeros((n, K))
    first_lat = np.zeros((n, K))
    mem_comp = np.empty((lowered.n_vmem, K))
    n_mem = 0

    kinds = lowered.kind
    deps = lowered.dep
    slots = lowered.slot
    sdest = lowered.scalar_dest
    va_occ = lowered.va_occ
    maximum = np.maximum

    for i in range(n):
        kind = kinds[i]

        if kind == LKIND_SCALAR:
            t_scalar = t_scalar + sc_total[slots[i]]
            continue

        if kind == LKIND_CSR:
            t_scalar = t_scalar + VSETVL
            start[i] = t_scalar
            completion[i] = t_scalar
            continue

        if kind == LKIND_BARRIER:
            t_sync = maximum(maximum(t_scalar, t_arith),
                             maximum(t_arith_done, t_vmem_done))
            t_mshr = np.minimum(t_mshr, t_sync)
            t_scalar = t_sync
            t_arith = t_sync
            t_arith_done = t_sync
            t_agu = t_sync
            t_vmem_done = t_sync
            start[i] = t_sync
            completion[i] = t_sync
            continue

        dep = deps[i]

        if kind == LKIND_VARITH:
            occ = va_occ[slots[i]]
            dispatch = t_scalar + DISPATCH
            t_scalar = dispatch

            ready = dispatch
            floor = None
            if dep >= 0:
                if chaining:
                    ready = maximum(ready,
                                    start[dep] + first_lat[dep] + PIPE)
                    floor = completion[dep] + PIPE
                else:
                    ready = maximum(ready, completion[dep])
            s = maximum(ready, t_arith)
            t_arith = s + occ
            c = t_arith + pipe_lat
            if floor is not None:
                c = maximum(c, floor)
            t_arith_done = maximum(t_arith_done, c)
            start[i] = s
            completion[i] = c
            if sdest[i]:
                t_scalar = maximum(t_scalar, c + XFER)
            continue

        # LKIND_VMEM
        slot = slots[i]
        dispatch = t_scalar + DISPATCH
        t_scalar = dispatch

        ready = dispatch
        floor = None
        if dep >= 0:
            if chaining:
                ready = maximum(ready, start[dep] + first_lat[dep] + PIPE)
                floor = completion[dep] + PIPE
            else:
                ready = maximum(ready, completion[dep])

        slot_free = mem_comp[n_mem - q_depth] if n_mem >= q_depth else None

        if ooo:
            agu_slot = maximum(t_agu, dispatch)
            if slot_free is not None:
                agu_slot = maximum(agu_slot, slot_free)
            t_agu = agu_slot + lowered.vm_addr[slot]
            s = maximum(agu_slot, ready)
        else:
            s = maximum(ready, t_agu)
            if slot_free is not None:
                s = maximum(s, slot_free)
            t_agu = s + lowered.vm_addr[slot]

        fl = vm_first[slot]
        c = s + fl + vm_busy[slot]
        if floor is not None:
            c = maximum(c, floor)
        if has_dram[slot]:
            t_mshr = maximum(t_mshr, s + lat) + vm_mshr_inc[slot]
            c = maximum(c, t_mshr)
        mem_comp[n_mem] = c
        n_mem += 1
        t_vmem_done = maximum(t_vmem_done, c)
        start[i] = s
        completion[i] = c
        first_lat[i] = fl

    t_end = maximum(maximum(t_scalar, t_arith),
                    maximum(t_arith_done, t_vmem_done))

    # global Bandwidth Limiter floor (exact integer closed form per config)
    total = lowered.total_dram_reads + lowered.total_dram_writes
    bw_floor = np.zeros(K)
    if total > 0:
        for k in range(K):
            bw_floor[k] = (((total - 1) // int(num[k])) * int(den[k]) + 1.0
                           + lat[k])
    cycles = maximum(t_end, bw_floor)

    return {
        "cycles": cycles,
        "bw_floor": bw_floor,
        "sc_total": sc_total,
        "vm_busy": vm_busy,
        "bw_win": bw_win,
        "lat": lat,
    }


def batch_cycles(lowered: LoweredTrace,
                 configs: Sequence[SdvConfig]) -> np.ndarray:
    """Cycle counts only, one per config — no :class:`CycleReport` garbage.

    This is the ``keep_reports=False`` sweep path: a compact float64 vector
    the harness turns directly into :class:`Measurement` rows.
    """
    configs = list(configs)
    _check_configs(lowered, configs)
    if lowered.n == 0:
        return np.zeros(len(configs))
    lat, den, num = _knob_axes(lowered, configs)
    return _walk(lowered, lat, den, num)["cycles"]


def simulate_batch(lowered: LoweredTrace,
                   configs: Sequence[SdvConfig]) -> list[CycleReport]:
    """Time one lowered trace at every config; one report per config.

    ``simulate_batch(lowered, [c1..cK])[k]`` equals
    ``simulate_fast(classified trace rebound to ck)`` cycle-for-cycle.
    """
    configs = list(configs)
    _check_configs(lowered, configs)
    K = len(configs)
    if lowered.n == 0:
        return [CycleReport(cycles=0.0, engine="batch") for _ in range(K)]

    lat, den, num = _knob_axes(lowered, configs)
    out = _walk(lowered, lat, den, num)

    issue = float(lowered.sc_issue.sum())
    stall_l2 = float(lowered.sc_stall_l2.sum())
    stall_dram_per_lat = float((lowered.sc_dram_reads / lowered.sc_p).sum())
    varith = float(lowered.va_occ.sum())
    vmem = out["vm_busy"].sum(axis=0) if lowered.n_vmem else np.zeros(K)

    return [
        CycleReport(
            cycles=float(out["cycles"][k]),
            engine="batch",
            scalar_issue_cycles=issue,
            scalar_stall_cycles=stall_l2 + stall_dram_per_lat * lat[k],
            vpu_arith_cycles=varith,
            vpu_mem_cycles=float(vmem[k]),
            bandwidth_bound_cycles=float(out["bw_floor"][k]),
            dram_reads=lowered.total_dram_reads,
            dram_writes=lowered.total_dram_writes,
            meta={"records": lowered.n, "batch_size": K},
        )
        for k in range(K)
    ]


def simulate_batch_one(ct: ClassifiedTrace) -> CycleReport:
    """Engine-registry adapter: time a classified trace at its own config.

    Lowers on the fly; callers that re-time many points should lower once
    (via :meth:`repro.soc.FpgaSdv.time_many`, which also caches the lowered
    form on the trace) and call :func:`simulate_batch` directly.
    """
    return simulate_batch(lower_trace(ct), [ct.config])[0]
