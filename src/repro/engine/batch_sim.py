"""Batch timing engine: every sweep point of one trace in a single walk.

``simulate_fast`` walks the classified trace once *per knob setting*; a
paper sweep calls it 7-49 times per (kernel, implementation) trace. This
engine walks the trace **once for all settings**: the per-record frontier
recurrence is identical at every sweep point, so each machine frontier
(scalar core, arithmetic pipe, AGU, memory queue, line-MSHR pool) becomes a
length-``K`` vector — one element per configuration — and every step of the
recurrence is a NumPy broadcast over that knob axis.

Everything knob-independent was precomputed by :func:`repro.engine.lower.
lower_trace`; per batch call only the latency-proportional and
bandwidth-proportional matrices are materialized (vectorized over records
*and* configs). The arithmetic matches :func:`simulate_fast` operation for
operation, so the two agree bit-for-bit — the agreement tests pin exact
cycle equality on all four kernels.

Configurations in one batch must share everything except the two runtime
sweep knobs (Latency Controller ``extra_latency_cycles`` and Bandwidth
Limiter ``bw_num/bw_den``); :class:`repro.errors.EngineError` otherwise.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.config import SdvConfig
from repro.engine import core_model, vpu_model
from repro.engine.lower import (
    FIRST_DRAM,
    FIRST_L2,
    LKIND_BARRIER,
    LKIND_CSR,
    LKIND_SCALAR,
    LKIND_VARITH,
    LKIND_VMEM,
    LoweredTrace,
    knob_free_config,
    lower_trace,
)
from repro.engine.results import CycleReport
from repro.errors import EngineError
from repro.memory.classify import ClassifiedTrace


def _check_configs(lowered: LoweredTrace,
                   configs: Sequence[SdvConfig]) -> None:
    if not configs:
        raise EngineError("simulate_batch needs at least one config")
    for k, cfg in enumerate(configs):
        if knob_free_config(cfg) != lowered.base_key:
            raise EngineError(
                f"config {k} differs from the lowered trace in more than "
                "the latency/bandwidth knobs; re-lower the trace for it"
            )


def _knob_axes(lowered: LoweredTrace, configs: Sequence[SdvConfig]):
    """The two knob vectors: DRAM latency and limiter window per config."""
    base = lowered.base
    # identical float path to SdvConfig.dram_latency: (l2 + service) + extra
    lat_base = base.l2_hit_latency + base.mem.dram_service_cycles
    lat = np.array([lat_base + c.mem.extra_latency_cycles for c in configs],
                   dtype=np.float64)
    den = np.array([c.mem.bw_den for c in configs], dtype=np.float64)
    num = np.array([c.mem.bw_num for c in configs], dtype=np.float64)
    return lat, den, num


def _walk(lowered: LoweredTrace, lat: np.ndarray, den: np.ndarray,
          num: np.ndarray, l2_lat: np.ndarray | None = None) -> dict:
    """Run the frontier recurrence once with the knob axis vectorized.

    ``l2_lat`` generalizes the axis beyond the two runtime knobs: it is the
    per-config L2 hit latency (default: the lowered trace's own). The
    attribution ladder uses it to re-time NoC-free and minimal-cache
    idealizations from the *same* lowered arrays — the L2 latency enters
    the model in exactly two places (scalar-block L2 stalls and the
    first-element latency of L2-served vector loads), both kept as raw
    counts in the lowered form.

    The loop reuses a fixed set of scratch buffers with ``out=`` ufunc
    calls and only materializes chain/completion rows for records some
    later record actually depends on; the arithmetic is operation-for-
    operation the one :func:`simulate_fast` performs, so cycles agree
    bit-for-bit (the agreement tests pin this).

    Returns the end-time vector plus the knob-dependent breakdown pieces.
    """
    from repro.obs.engine_stats import get_engine_stats, \
        introspection_enabled

    if introspection_enabled():
        es = get_engine_stats()
        es.count("batch.walks")
        es.count("batch.points", len(lat))
        es.count("batch.record_points", lowered.n * len(lat))
    K = lat.shape[0]
    n = lowered.n
    base = lowered.base
    vpu = base.vpu
    chaining = vpu.chaining
    ooo = vpu.ooo_mem_issue
    q_depth = vpu.mem_queue_depth
    line_mshrs = vpu.line_mshrs
    pipe_lat = vpu_model.arith_latency(base)
    PIPE = float(vpu_model.LANE_PIPE_DEPTH)
    DISPATCH = core_model.VECTOR_DISPATCH_CYCLES
    VSETVL = core_model.VSETVL_CYCLES
    XFER = core_model.SCALAR_RESULT_TRANSFER_CYCLES
    if l2_lat is None:
        l2_lat = np.full(K, base.l2_hit_latency)

    # knob-dependent per-record matrices, vectorized over (records, K) ----
    bw_win = den / num                                      # cycles per txn
    # same float ops in the same order as core_model.scalar_block_time:
    # (issue + l2_hits*l2_lat/p) + dram_reads*dram_lat/p, then the bw floor
    sc_total = np.maximum(
        lowered.sc_issue[:, None]
        + lowered.sc_l2_hits[:, None] * l2_lat[None, :] / lowered.sc_p[:, None]
        + lowered.sc_dram_reads[:, None] * lat[None, :] / lowered.sc_p[:, None],
        lowered.sc_bw_txns[:, None] * den[None, :] / num[None, :],
    )
    vm_service = np.maximum(
        lowered.vm_lines[:, None],
        lowered.vm_l2_lines[:, None]
        + lowered.vm_txns[:, None] * den[None, :] / num[None, :],
    )
    vm_busy_m = np.maximum(lowered.vm_addr[:, None], vm_service)
    fkind = lowered.vm_first_kind[:, None]
    vm_first_m = np.where(fkind == FIRST_DRAM, lat[None, :],
                          np.where(fkind == FIRST_L2, l2_lat[None, :], 0.0))
    vm_mshr_m = lowered.vm_dram_reads[:, None] * lat[None, :] / line_mshrs

    # per-record row lists: plain list indexing beats repeated 2-D numpy
    # row extraction in the walk below
    sc_rows = list(sc_total)
    vm_busy = list(vm_busy_m)
    vm_first = list(vm_first_m)
    vm_mshr = list(vm_mshr_m)
    has_dram = (lowered.vm_dram_reads > 0).tolist()
    va_occ = lowered.va_occ.tolist()
    vm_addr = lowered.vm_addr.tolist()

    kinds = lowered.kind
    deps = lowered.dep
    slots = lowered.slot
    sdest = lowered.scalar_dest

    # vsetvl/barrier rows only need start/completion stored if something
    # actually depends on them (register dataflow never does)
    dep_arr = np.asarray(deps, dtype=np.int64)
    needed_arr = np.zeros(n, dtype=bool)
    needed_arr[dep_arr[dep_arr >= 0]] = True
    needed = needed_arr.tolist()

    # frontiers, one element per config -----------------------------------
    t_scalar = np.zeros(K)
    t_arith = np.zeros(K)
    t_agu = np.zeros(K)
    t_mshr = np.zeros(K)

    # chain[i] = start + first_latency; completion[i] = completion. Each
    # record's rows are computed in place (no scratch-then-copy); rows of
    # records nothing reads stay zero, which the segment maxima below
    # absorb exactly (all frontier times are non-negative, max is exact).
    chain = np.zeros((n, K))
    completion = np.zeros((n, K))
    chain_rows = list(chain)
    comp_rows = list(completion)
    mem_comp: list = []        # completion-row views of memory records
    n_mem = 0

    b_ready = np.empty(K)
    b_floor = np.empty(K)
    b_tmp = np.empty(K)

    add = np.add
    maximum = np.maximum

    # Instead of running "latest completion" frontiers updated per record,
    # barrier joins take one vectorized max over the segment's completion
    # rows: t_arith carries the previous sync forward, so
    # max(t_scalar, t_arith, completions since the last barrier) equals
    # the fast engine's 4-way join bit-for-bit.
    seg0 = 0                   # first record of the current barrier segment

    for i, (kind, dep, slot) in enumerate(zip(kinds, deps, slots)):

        if kind == LKIND_VARITH:
            add(t_scalar, DISPATCH, out=t_scalar)           # dispatch
            s_row = chain_rows[i]
            c_row = comp_rows[i]
            has_floor = False
            if dep >= 0:
                if chaining:
                    add(chain_rows[dep], PIPE, out=s_row)
                    maximum(s_row, t_scalar, out=s_row)
                    maximum(s_row, t_arith, out=s_row)      # s
                    add(comp_rows[dep], PIPE, out=b_floor)
                    has_floor = True
                else:
                    maximum(t_scalar, comp_rows[dep], out=s_row)
                    maximum(s_row, t_arith, out=s_row)
            else:
                maximum(t_scalar, t_arith, out=s_row)
            add(s_row, va_occ[slot], out=t_arith)
            add(t_arith, pipe_lat, out=c_row)
            if has_floor:
                maximum(c_row, b_floor, out=c_row)
            if sdest[i]:
                add(c_row, XFER, out=b_tmp)
                maximum(t_scalar, b_tmp, out=t_scalar)
            continue

        if kind == LKIND_VMEM:
            add(t_scalar, DISPATCH, out=t_scalar)           # dispatch
            s_row = chain_rows[i]
            c_row = comp_rows[i]
            has_floor = False
            if dep >= 0:
                if chaining:
                    add(chain_rows[dep], PIPE, out=b_ready)
                    maximum(b_ready, t_scalar, out=b_ready)
                    add(comp_rows[dep], PIPE, out=b_floor)
                    has_floor = True
                else:
                    maximum(t_scalar, comp_rows[dep], out=b_ready)

                if ooo:
                    maximum(t_agu, t_scalar, out=t_agu)     # agu_slot
                    if n_mem >= q_depth:
                        maximum(t_agu, mem_comp[n_mem - q_depth], out=t_agu)
                    maximum(t_agu, b_ready, out=b_ready)    # s
                    add(t_agu, vm_addr[slot], out=t_agu)
                else:
                    maximum(b_ready, t_agu, out=b_ready)
                    if n_mem >= q_depth:
                        maximum(b_ready, mem_comp[n_mem - q_depth],
                                out=b_ready)
                    add(b_ready, vm_addr[slot], out=t_agu)  # b_ready is s
            else:
                # no dep: ready == t_scalar, so s collapses onto the AGU
                # frontier (it already majorizes t_scalar) — one op fewer
                if ooo:
                    maximum(t_agu, t_scalar, out=t_agu)     # agu_slot
                    if n_mem >= q_depth:
                        maximum(t_agu, mem_comp[n_mem - q_depth], out=t_agu)
                    b_ready[:] = t_agu                      # s
                    add(t_agu, vm_addr[slot], out=t_agu)
                else:
                    maximum(t_scalar, t_agu, out=b_ready)
                    if n_mem >= q_depth:
                        maximum(b_ready, mem_comp[n_mem - q_depth],
                                out=b_ready)
                    add(b_ready, vm_addr[slot], out=t_agu)  # b_ready is s

            add(b_ready, vm_first[slot], out=s_row)         # s + first
            add(s_row, vm_busy[slot], out=c_row)
            if has_floor:
                maximum(c_row, b_floor, out=c_row)
            if has_dram[slot]:
                add(b_ready, lat, out=b_tmp)
                maximum(t_mshr, b_tmp, out=t_mshr)
                add(t_mshr, vm_mshr[slot], out=t_mshr)
                maximum(c_row, t_mshr, out=c_row)
            mem_comp.append(c_row)
            n_mem += 1
            continue

        if kind == LKIND_SCALAR:
            add(t_scalar, sc_rows[slot], out=t_scalar)
            continue

        if kind == LKIND_CSR:
            add(t_scalar, VSETVL, out=t_scalar)
            if needed[i]:
                chain_rows[i][:] = t_scalar
                comp_rows[i][:] = t_scalar
            continue

        # LKIND_BARRIER
        maximum(t_scalar, t_arith, out=b_tmp)
        if i > seg0:
            completion[seg0:i].max(axis=0, out=b_ready)
            maximum(b_tmp, b_ready, out=b_tmp)              # t_sync
        np.minimum(t_mshr, b_tmp, out=t_mshr)
        t_scalar[:] = b_tmp
        t_arith[:] = b_tmp
        t_agu[:] = b_tmp
        if needed[i]:
            chain_rows[i][:] = b_tmp
            comp_rows[i][:] = b_tmp
        seg0 = i + 1

    t_end = maximum(t_scalar, t_arith)
    if n > seg0:
        completion[seg0:n].max(axis=0, out=b_ready)
        t_end = maximum(t_end, b_ready)

    # global Bandwidth Limiter floor (exact integer closed form per config)
    total = lowered.total_dram_reads + lowered.total_dram_writes
    bw_floor = np.zeros(K)
    if total > 0:
        for k in range(K):
            bw_floor[k] = (((total - 1) // int(num[k])) * int(den[k]) + 1.0
                           + lat[k])
    cycles = maximum(t_end, bw_floor)

    return {
        "cycles": cycles,
        "bw_floor": bw_floor,
        "sc_total": sc_total,
        "vm_busy": vm_busy_m,
        "bw_win": bw_win,
        "lat": lat,
    }


def batch_cycles(lowered: LoweredTrace,
                 configs: Sequence[SdvConfig]) -> np.ndarray:
    """Cycle counts only, one per config — no :class:`CycleReport` garbage.

    This is the ``keep_reports=False`` sweep path: a compact float64 vector
    the harness turns directly into :class:`Measurement` rows.
    """
    configs = list(configs)
    _check_configs(lowered, configs)
    if lowered.n == 0:
        return np.zeros(len(configs))
    lat, den, num = _knob_axes(lowered, configs)
    return _walk(lowered, lat, den, num)["cycles"]


def simulate_batch(lowered: LoweredTrace,
                   configs: Sequence[SdvConfig]) -> list[CycleReport]:
    """Time one lowered trace at every config; one report per config.

    ``simulate_batch(lowered, [c1..cK])[k]`` equals
    ``simulate_fast(classified trace rebound to ck)`` cycle-for-cycle.
    """
    configs = list(configs)
    _check_configs(lowered, configs)
    K = len(configs)
    if lowered.n == 0:
        return [CycleReport(cycles=0.0, engine="batch") for _ in range(K)]

    lat, den, num = _knob_axes(lowered, configs)
    out = _walk(lowered, lat, den, num)

    issue = float(lowered.sc_issue.sum())
    stall_l2 = float(lowered.sc_stall_l2.sum())
    stall_dram_per_lat = float((lowered.sc_dram_reads / lowered.sc_p).sum())
    varith = float(lowered.va_occ.sum())
    vmem = out["vm_busy"].sum(axis=0) if lowered.n_vmem else np.zeros(K)

    return [
        CycleReport(
            cycles=float(out["cycles"][k]),
            engine="batch",
            scalar_issue_cycles=issue,
            scalar_stall_cycles=stall_l2 + stall_dram_per_lat * lat[k],
            vpu_arith_cycles=varith,
            vpu_mem_cycles=float(vmem[k]),
            bandwidth_bound_cycles=float(out["bw_floor"][k]),
            dram_reads=lowered.total_dram_reads,
            dram_writes=lowered.total_dram_writes,
            meta={"records": lowered.n, "batch_size": K},
        )
        for k in range(K)
    ]


def simulate_batch_one(ct: ClassifiedTrace) -> CycleReport:
    """Engine-registry adapter: time a classified trace at its own config.

    Lowers on the fly; callers that re-time many points should lower once
    (via :meth:`repro.soc.FpgaSdv.time_many`, which also caches the lowered
    form on the trace) and call :func:`simulate_batch` directly.
    """
    return simulate_batch(lower_trace(ct), [ct.config])[0]
