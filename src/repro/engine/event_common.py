"""Shared per-record plan for the two event engines.

The coroutine reference engine (:mod:`repro.engine.event_sim`) and the
array-backed fast engine (:mod:`repro.engine.event_fast`) must produce
bit-identical schedules. Everything either engine derives from the
classified trace — record kinds, dependency edges, per-line levels and
bank targets, quantized issue gaps, arithmetic occupancies — is therefore
computed **once**, here, and both engines read the same
:class:`EventPlan`. A disagreement can then only come from the scheduling
machinery itself, which is exactly what the equality tests probe.

Quantization: the DES kernel runs on integer cycles
(:mod:`repro.engine.des`), but three cost terms are fractional —

* the scalar no-memory issue time ``n_alu * alu_cpi / issue_width``,
* the scalar per-op issue gap ``(n_alu * alu_cpi / n_mem + 1) / width``,
* the vector AGU issue gap ``addr_cycles / n_lines``.

Each is spread over its ops Bresenham-style: op ``j`` advances the clock
by ``int((j+1)*gap) - int(j*gap)``, so the cumulative schedule tracks the
exact fractional one to within one cycle and the total is
``int(n * gap)``. The plan stores the resulting **integer step lists**;
neither engine touches a float on the timing path.

The plan is knob-independent for the sweep knobs that matter (latency,
bandwidth, NoC and L2 timing), so attribution ladders and knob sweeps
re-timing the same classified trace reuse one cached plan (stashed on the
trace object, keyed by the quantization-relevant config fields).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.lower import LKIND_SCALAR, LKIND_VMEM, lower_trace
from repro.errors import EngineError
from repro.memory.classify import ClassifiedTrace, _coalesce_lines
from repro.util.mathx import log2_int
from repro.util.units import LINE_BYTES

_LINE_SHIFT = log2_int(LINE_BYTES)


def _gap_steps(gap: float, n: int) -> list[int]:
    """Integer per-op steps whose prefix sums floor-track ``j * gap``."""
    steps = []
    prev = 0
    for j in range(n):
        cum = int((j + 1) * gap)
        steps.append(cum - prev)
        prev = cum
    return steps


@dataclass
class EventPlan:
    """Pre-lowered, pre-quantized driving tables for the event engines.

    Per-record lists are indexed by record; the ``sc_*`` / ``va_*`` /
    ``vm_*`` lists are indexed by the record's ``slot`` (its position
    within its own kind, as assigned by :func:`repro.engine.lower`).
    """

    n: int
    kind: list            # LKIND_* codes (CSR split out of VARITH)
    dep: list             # producing record index, -1 if none
    slot: list            # index into the kind-specific lists below
    scalar_dest: list     # bool: core stalls for a scalar result
    vl: list              # int per record (timeline annotation)

    # scalar blocks, by slot ----------------------------------------------
    sc_n_mem: list        # memory ops in the block
    sc_issue: list        # int: quantized issue time (no-mem blocks)
    sc_steps: list        # list[int] per-op issue steps (None if no mem)
    sc_gap_total: list    # int: sum of the step list
    sc_p: list            # effective MLP: max(1, min(mshrs, hint))
    sc_levels: list       # list[int] AccessLevel per op (None if no mem)
    sc_banks: list        # list[int] target bank per op
    sc_wb: list           # DRAM writebacks charged to the block
    sc_pf: list           # prefetch fills charged to the block

    # vector arithmetic (non-CSR), by slot --------------------------------
    va_occ: list          # int: pipe occupancy

    # vector memory, by slot ----------------------------------------------
    vm_n: list            # coalesced line requests
    vm_steps: list        # list[int] per-line AGU issue steps
    vm_levels: list       # list[int] AccessLevel per line
    vm_banks: list        # list[int] target bank per line
    vm_wb: list           # DRAM writebacks charged to the instruction
    vm_dram: list         # demand DRAM read lines (timeline annotation)

    total_dram_reads: int
    total_dram_writes: int


def _plan_key(ct: ClassifiedTrace) -> tuple:
    """Config fields the plan depends on (everything else is runtime)."""
    cfg = ct.config
    return (
        cfg.core.issue_width, cfg.core.alu_cpi, cfg.core.mshrs,
        cfg.l2.banks, cfg.vpu.lanes,
        cfg.vpu.gather_issue_per_cycle, cfg.vpu.stride_issue_per_cycle,
        cfg.vpu.coalesce_gathers,
    )


def build_event_plan(ct: ClassifiedTrace) -> EventPlan:
    """Compile a classified trace into an :class:`EventPlan`."""
    lowered = lower_trace(ct)
    cfg = ct.config
    core = cfg.core
    rows = ct.rows
    records = ct.trace.records
    bank_mask = cfg.l2.banks - 1
    n = lowered.n

    kind = lowered.kind
    slot = lowered.slot

    sc_n_mem: list = []
    sc_issue: list = []
    sc_steps: list = []
    sc_gap_total: list = []
    sc_p: list = []
    sc_levels: list = []
    sc_banks: list = []
    sc_wb: list = []
    sc_pf: list = []
    vm_n: list = []
    vm_steps: list = []
    vm_levels: list = []
    vm_banks: list = []
    vm_wb: list = []
    vm_dram: list = []

    for i in range(n):
        k = kind[i]
        if k == LKIND_SCALAR:
            rec = records[i]
            row = rows[i]
            n_mem = rec.n_mem_ops
            sc_n_mem.append(n_mem)
            sc_wb.append(int(row["dram_writes"]))
            sc_pf.append(int(row["pf_dram_reads"]))
            if n_mem == 0:
                sc_issue.append(
                    int(rec.n_alu_ops * core.alu_cpi / core.issue_width))
                sc_steps.append(None)
                sc_gap_total.append(0)
                sc_p.append(1)
                sc_levels.append(None)
                sc_banks.append(None)
                continue
            gap = ((rec.n_alu_ops * core.alu_cpi / n_mem + 1.0)
                   / core.issue_width)
            steps = _gap_steps(gap, n_mem)
            sc_issue.append(0)
            sc_steps.append(steps)
            sc_gap_total.append(int(n_mem * gap))
            sc_p.append(max(1, min(core.mshrs, int(row["mlp_hint"]))))
            sc_levels.append(ct.levels[i].astype(int).tolist())
            lines = rec.mem_addrs >> _LINE_SHIFT
            sc_banks.append((lines & bank_mask).astype(int).tolist())
        elif k == LKIND_VMEM:
            rec = records[i]
            row = rows[i]
            lines = _coalesce_lines(rec.addrs, rec.pattern,
                                    cfg.vpu.coalesce_gathers)
            n_lines = int(lines.shape[0])
            levels = ct.levels[i]
            if n_lines != levels.shape[0]:
                raise EngineError(
                    "classified levels misaligned with line requests")
            addr_cycles = float(lowered.vm_addr[slot[i]])
            gap = (addr_cycles / n_lines) if n_lines else 0.0
            vm_n.append(n_lines)
            vm_steps.append(_gap_steps(gap, n_lines))
            vm_levels.append(levels.astype(int).tolist())
            vm_banks.append((lines & bank_mask).astype(int).tolist())
            vm_wb.append(int(row["dram_writes"]))
            vm_dram.append(int(row["dram_reads"]))

    va_occ = []
    for occ in lowered.va_occ.tolist():
        q = int(occ)
        if q != occ:
            raise EngineError(f"non-integral arith occupancy {occ}")
        va_occ.append(q)

    return EventPlan(
        n=n,
        kind=kind,
        dep=lowered.dep,
        slot=slot,
        scalar_dest=lowered.scalar_dest,
        vl=rows["vl"].astype(int).tolist(),
        sc_n_mem=sc_n_mem,
        sc_issue=sc_issue,
        sc_steps=sc_steps,
        sc_gap_total=sc_gap_total,
        sc_p=sc_p,
        sc_levels=sc_levels,
        sc_banks=sc_banks,
        sc_wb=sc_wb,
        sc_pf=sc_pf,
        va_occ=va_occ,
        vm_n=vm_n,
        vm_steps=vm_steps,
        vm_levels=vm_levels,
        vm_banks=vm_banks,
        vm_wb=vm_wb,
        vm_dram=vm_dram,
        total_dram_reads=int(rows["dram_reads"].sum()
                             + rows["pf_dram_reads"].sum()),
        total_dram_writes=int(rows["dram_writes"].sum()),
    )


def event_plan(ct: ClassifiedTrace) -> EventPlan:
    """Cached :func:`build_event_plan`.

    Attribution ladders and knob sweeps re-time one classified trace under
    many latency/bandwidth configs; those all share the plan. The cache
    entry lives on the (immutable, shared) trace object and is validated
    by identity of the per-record level arrays plus the
    quantization-relevant config fields.
    """
    from repro.obs.engine_stats import get_engine_stats, \
        introspection_enabled

    key = _plan_key(ct)
    cached = getattr(ct.trace, "_event_plan", None)
    if cached is not None:
        levels_ref, ckey, plan = cached
        if levels_ref is ct.levels and ckey == key:
            if introspection_enabled():
                get_engine_stats().count("plan_cache.hits")
            return plan
    if introspection_enabled():
        get_engine_stats().count("plan_cache.misses")
    plan = build_event_plan(ct)
    try:
        ct.trace._event_plan = (ct.levels, key, plan)
    except (AttributeError, TypeError):  # pragma: no cover - frozen trace
        pass
    return plan
