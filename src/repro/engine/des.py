"""Minimal discrete-event simulation kernel (SimPy-flavoured).

The event engine models the FPGA-SDV as communicating processes (core, VPU
pipes, L2 banks, DRAM channel); this module provides the scheduling
substrate: an :class:`Environment` with a time-ordered event heap,
generator-based :class:`Process` coroutines that ``yield`` events, and a
FIFO :class:`Resource` for contended units.

Time is counted in **integer cycles**. Hardware schedules on clock edges,
and fractional timestamps were the one source of float-comparison drift
between this kernel and the array-backed fast engine
(:mod:`repro.engine.event_fast`), which must replay the exact same event
order. ``_schedule`` therefore rejects non-integral delays; cost models
quantize their few fractional terms (issue gaps) before they reach the
kernel.

Two scheduling structures keep the hot path cheap:

* a heap of ``(time, seq, event)`` for future events, and
* a plain FIFO deque for **same-time** events scheduled while the current
  timestamp is being processed (the common case: grants, zero-delay
  succeeds, process completions). Draining it directly avoids the old
  pop/re-push churn where every zero-delay event took a full heap round
  trip.

Only the features the event engine needs are implemented — this is not a
general SimPy replacement, but it is a real DES kernel with deterministic
FIFO ordering (ties broken by schedule order), which the tests rely on.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator

from repro.errors import EngineError


class Event:
    """One-shot event; processes waiting on it resume when it succeeds."""

    __slots__ = ("env", "callbacks", "triggered", "value")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger now (schedules callbacks at the current time)."""
        if self.triggered:
            raise EngineError("event already triggered")
        self.triggered = True
        self.value = value
        self.env._schedule(self, 0)
        return self

    def succeed_at(self, time: float, value: Any = None) -> "Event":
        """Trigger at an absolute future time."""
        if self.triggered:
            raise EngineError("event already triggered")
        if time < self.env.now:
            raise EngineError(
                f"cannot trigger in the past ({time} < {self.env.now})"
            )
        self.triggered = True
        self.value = value
        self.env._schedule(self, time - self.env.now)
        return self


class Timeout(Event):
    """Event that fires after a fixed delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float) -> None:
        super().__init__(env)
        if delay < 0:
            raise EngineError(f"negative timeout {delay}")
        self.triggered = True
        env._schedule(self, delay)


class Process(Event):
    """A generator coroutine; itself an event that fires on return.

    The first slice runs **synchronously** at creation (up to the first
    ``yield``), so a spawned process observes the machine state at its
    spawn point — the same convention the array-backed engine's inline
    state-machine starts follow.
    """

    __slots__ = ("_gen",)

    def __init__(self, env: "Environment",
                 gen: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        self._gen = gen
        self._step(None)

    def _resume(self, event: Event) -> None:
        self._step(event.value)

    def _step(self, value: Any) -> None:
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            if not self.triggered:
                self.triggered = True
                self.value = stop.value
                self.env._schedule(self, 0)
            return
        if not isinstance(target, Event):
            raise EngineError(
                f"process yielded {type(target).__name__}, expected Event"
            )
        if target.triggered and not target.callbacks and target in \
                self.env._fired:
            # already fired and processed: resume immediately
            boot = Event(self.env)
            boot.triggered = True
            boot.value = target.value
            boot.callbacks.append(self._resume)
            self.env._schedule(boot, 0)
        else:
            target.callbacks.append(self._resume)


class AllOf(Event):
    """Fires when all child events have fired."""

    __slots__ = ("_pending",)

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env)
        pending = [e for e in events if e not in env._fired]
        self._pending = len(pending)
        if self._pending == 0:
            self.succeed()
            return
        for e in pending:
            e.callbacks.append(self._child_fired)

    def _child_fired(self, _event: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.succeed()


class Resource:
    """FIFO resource with fixed capacity (e.g. an L2 bank port)."""

    __slots__ = ("env", "capacity", "_in_use", "_queue")

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise EngineError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._queue: deque[Event] = deque()

    def request(self) -> Event:
        """Event that fires when a unit is granted (FIFO order)."""
        ev = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._queue.append(ev)
        return ev

    def release(self) -> None:
        if self._queue:
            self._queue.popleft().succeed()
        else:
            self._in_use -= 1
            if self._in_use < 0:
                raise EngineError("release without matching request")

    @property
    def queue_length(self) -> int:
        return len(self._queue)


class Environment:
    """Event loop: a heap of (time, seq, event) plus a same-time deque."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._seq = 0
        self._fired: set[Event] = set()
        self._cur: deque[Event] = deque()
        self._running = False

    def _schedule(self, event: Event, delay: float) -> None:
        d = int(delay)
        if d != delay:
            raise EngineError(
                f"non-integral delay {delay!r}: the DES kernel runs on "
                "integer cycles (quantize in the cost model)"
            )
        if d == 0 and self._running:
            # fires within the timestamp currently being drained
            self._cur.append(event)
            return
        heapq.heappush(self._heap, (self.now + d, self._seq, event))
        self._seq += 1

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        return Process(self, gen)

    def all_of(self, events: list[Event]) -> AllOf:
        return AllOf(self, events)

    def _fire(self, event: Event) -> None:
        self._fired.add(event)
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            cb(event)
        # callbacks may have re-appended (e.g. AllOf children); drain
        while event.callbacks:
            cbs, event.callbacks = event.callbacks, []
            for cb in cbs:
                cb(event)

    def run(self, until: float | None = None) -> None:
        """Process events until the heap drains (or ``until`` is reached)."""
        # opt-in introspection (repro.obs.engine_stats): one local boolean
        # check per active timestamp; fired-event counts are read off the
        # _fired set instead of a per-event counter
        from repro.obs.engine_stats import introspection_enabled

        intro = introspection_enabled()
        i_ts = 0
        i_fired0 = len(self._fired)
        i_max_drain = 0
        heap = self._heap
        cur = self._cur
        self._running = True
        try:
            while heap:
                time = heap[0][0]
                if until is not None and time > until:
                    self.now = int(until)
                    return
                if time < self.now:
                    raise EngineError("time went backwards")
                self.now = time
                before = len(self._fired) if intro else 0
                # heap entries first (schedule order), then the same-time
                # deque, which collects zero-delay events as they appear
                while heap and heap[0][0] == time:
                    self._fire(heapq.heappop(heap)[2])
                while cur:
                    self._fire(cur.popleft())
                if intro:
                    i_ts += 1
                    d = len(self._fired) - before
                    if d > i_max_drain:
                        i_max_drain = d
        finally:
            self._running = False
            if intro:
                from repro.obs.engine_stats import get_engine_stats

                es = get_engine_stats()
                es.count("event_ref.timestamps", i_ts)
                es.count("event_ref.events", len(self._fired) - i_fired0)
                es.high("event_ref.max_drain_depth", i_max_drain)
