"""Scalar-core (Atrevido-like) cost model.

Atrevido is a superscalar out-of-order core, but a modest one: its ability
to overlap memory latency is bounded by its MSHRs and by how many of the
pending misses are actually independent (the trace's ``mlp_hint``). The
block-level model used by both engines:

* **issue time** — instructions retire at most ``issue_width`` per cycle;
* **memory stall time** — every L2-hit or DRAM access contributes its
  latency divided by the effective memory-level parallelism
  ``p = min(mshrs, mlp_hint)`` (an OoO core with p MSHRs sustains p misses
  in flight when the code allows it);
* **bandwidth floor** — the block cannot finish before its DRAM
  transactions stream through the Bandwidth Limiter.

The block time is ``max(issue + stall, bw)``: a modest OoO window overlaps
latency between misses (the ``/p`` factor) but does not hide residual
memory stalls under issue work, so the two add — this matches the paper's
observation that the scalar core degrades steeply with latency even on
MLP-friendly code. L1 hits are covered by the issue slots (the 2-cycle
load-to-use pipes through the OoO window).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SdvConfig


@dataclass(frozen=True)
class ScalarBlockTime:
    """Timing decomposition of one scalar block."""

    issue: float
    stall_l2: float
    stall_dram: float
    bw_floor: float

    @property
    def total(self) -> float:
        return max(self.issue + self.stall_l2 + self.stall_dram, self.bw_floor)

    @property
    def stall(self) -> float:
        return self.stall_l2 + self.stall_dram


def scalar_block_time(
    config: SdvConfig,
    *,
    n_alu: int,
    n_mem: int,
    l2_hits: int,
    dram_reads: int,
    dram_writes: int,
    mlp_hint: int,
    pf_dram_reads: int = 0,
) -> ScalarBlockTime:
    """Cycle cost of one scalar block under the current knob settings.

    ``pf_dram_reads`` are prefetcher-issued fills: they consume Bandwidth
    Limiter slots but add no demand stall (the prefetcher runs ahead).
    """
    core = config.core
    issue = (n_alu * core.alu_cpi + n_mem) / core.issue_width

    p = max(1, min(core.mshrs, mlp_hint))
    stall_l2 = l2_hits * config.l2_hit_latency / p
    stall_dram = dram_reads * config.dram_latency / p

    mem = config.mem
    bw_floor = ((dram_reads + dram_writes + pf_dram_reads)
                * mem.bw_den / mem.bw_num)

    return ScalarBlockTime(issue=issue, stall_l2=stall_l2,
                           stall_dram=stall_dram, bw_floor=bw_floor)


#: cycles the scalar core spends dispatching one vector instruction to the
#: decoupled VPU (fall-through cost in the scalar pipeline).
VECTOR_DISPATCH_CYCLES: float = 1.0

#: scalar-side cost of a vsetvl (reads/writes vl CSR, forwards to VPU).
VSETVL_CYCLES: float = 3.0

#: extra scalar cycles when an instruction returns a scalar result from the
#: VPU (vpopc/vfirst/reductions): result transfer over the coupling interface.
SCALAR_RESULT_TRANSFER_CYCLES: float = 4.0
