"""Lower a classified trace into flat, knob-independent arrays.

A Figure-3/Figure-5 sweep re-times the *same* classified trace at many
Latency Controller / Bandwidth Limiter settings. Almost everything the fast
engine computes per record is identical at every one of those points:
record kinds, dependency edges, arithmetic occupancies, address-generation
times, line/transaction counts, scalar-block issue and L2-stall terms. Only
the terms proportional to ``dram_latency`` (which carries the extra-latency
knob) and to the limiter window ``bw_den/bw_num`` change.

:func:`lower_trace` factors that split out once: it compiles a
:class:`repro.memory.classify.ClassifiedTrace` into a :class:`LoweredTrace`
of plain NumPy arrays and Python lists — no structured-array row objects,
no enum lookups, no cost-model calls left on the timing path. The batch
engine (:mod:`repro.engine.batch_sim`) then times every sweep point in a
single trace walk, broadcasting the per-record recurrence over the knob
axis.

The decompositions mirror :mod:`repro.engine.core_model` and
:mod:`repro.engine.vpu_model` term by term (same operations in the same
order, so the batch engine reproduces :func:`simulate_fast` cycles
bit-for-bit); the batch-vs-fast agreement tests pin that equivalence on
every kernel.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.config import SdvConfig
from repro.engine import vpu_model
from repro.errors import EngineError
from repro.memory.classify import (
    KIND_BARRIER,
    KIND_SCALAR,
    KIND_VARITH,
    KIND_VMEM,
    ClassifiedTrace,
)
from repro.trace.events import VMemPattern, VOpClass

# Lowered record kinds. Same codes as classify for the shared ones, plus a
# dedicated code for vsetvl rows so the walk needs no opclass lookup.
LKIND_SCALAR = KIND_SCALAR
LKIND_VARITH = KIND_VARITH
LKIND_VMEM = KIND_VMEM
LKIND_BARRIER = KIND_BARRIER
LKIND_CSR = 4

# first-latency selector for vector memory rows
FIRST_NONE, FIRST_L2, FIRST_DRAM = 0, 1, 2

_CSR_ID = list(VOpClass).index(VOpClass.CSR)
_INDEXED_ID = list(VMemPattern).index(VMemPattern.INDEXED)


def knob_free_config(config: SdvConfig) -> SdvConfig:
    """``config`` with the two sweep knobs neutralized.

    Two configs that agree on this key may be timed from the same
    :class:`LoweredTrace`; everything else (cache geometry, VPU build,
    NoC latencies, ...) is baked into the lowered arrays.
    """
    return dataclasses.replace(
        config,
        mem=dataclasses.replace(
            config.mem, extra_latency_cycles=0, bw_num=1, bw_den=1
        ),
    )


@dataclass
class LoweredTrace:
    """Knob-independent compilation of one classified trace.

    Per-record lists drive the sequential frontier walk; the kind-specific
    arrays are indexed by ``slot`` (each record's position within its own
    kind) and feed the vectorized per-batch matrix precomputation.
    """

    base: SdvConfig            # config the trace was classified under
    base_key: SdvConfig        # knob_free_config(base): batch compat key
    n: int

    # per-record walk data (python lists: fastest scalar indexing)
    kind: list                 # LKIND_* codes
    dep: list                  # producing record index, -1 if none
    slot: list                 # index into the kind-specific arrays below
    scalar_dest: list          # bool per record

    # scalar blocks, indexed by slot --------------------------------------
    sc_const: np.ndarray       # issue + L2 stall (knob-independent cycles)
    sc_l2_hits: np.ndarray     # float: L2 hit count (for re-timed L2 lat)
    sc_dram_reads: np.ndarray  # float: demand DRAM reads
    sc_p: np.ndarray           # float: effective MLP min(mshrs, hint)
    sc_bw_txns: np.ndarray     # float: limiter transactions (incl. prefetch)
    sc_issue: np.ndarray       # issue component alone (breakdown)
    sc_stall_l2: np.ndarray    # L2 stall component alone (breakdown)

    # vector arithmetic (non-CSR), indexed by slot ------------------------
    va_occ: np.ndarray         # pipe occupancy in cycles

    # vector memory, indexed by slot --------------------------------------
    vm_addr: np.ndarray        # AGU occupancy in cycles
    vm_lines: np.ndarray       # float: line requests
    vm_l2_lines: np.ndarray    # float: lines served by L2
    vm_txns: np.ndarray        # float: DRAM transactions (reads+writebacks)
    vm_dram_reads: np.ndarray  # float: DRAM read lines (MSHR recurrence)
    vm_first_kind: np.ndarray  # FIRST_NONE / FIRST_L2 / FIRST_DRAM

    # trace-wide totals ---------------------------------------------------
    total_dram_reads: int      # demand + prefetch reads (fast-engine count)
    total_dram_writes: int

    @property
    def n_vmem(self) -> int:
        return int(self.vm_addr.shape[0])


def lower_trace(ct: ClassifiedTrace) -> LoweredTrace:
    """Compile ``ct`` once into knob-independent flat arrays."""
    config = ct.config.validate()
    rows = ct.rows
    n = int(rows.shape[0])
    core = config.core
    vpu = config.vpu
    l2_lat = config.l2_hit_latency  # hoisted: knob-independent

    kinds_arr = rows["kind"]
    sc_mask = kinds_arr == KIND_SCALAR
    va_mask = (kinds_arr == KIND_VARITH) & (rows["opclass"] != _CSR_ID)
    csr_mask = (kinds_arr == KIND_VARITH) & (rows["opclass"] == _CSR_ID)
    vm_mask = kinds_arr == KIND_VMEM

    # -- scalar blocks (mirrors core_model.scalar_block_time) -------------
    sc = rows[sc_mask]
    sc_issue = (sc["n_alu"] * core.alu_cpi + sc["n_mem"]) / core.issue_width
    sc_p = np.maximum(1, np.minimum(core.mshrs, sc["mlp_hint"]))
    sc_stall_l2 = sc["l2_hits"] * l2_lat / sc_p
    sc_bw_txns = (sc["dram_reads"] + sc["dram_writes"]
                  + sc["pf_dram_reads"]).astype(np.float64)

    # -- vector arithmetic (mirrors vpu_model.arith_occupancy) ------------
    va = rows[va_mask]
    va_vl = np.maximum(va["vl"].astype(np.int64), 1)
    groups = (va_vl + vpu.lanes - 1) // vpu.lanes
    tree = int(np.ceil(np.log2(max(vpu.lanes, 2))))
    opclass = va["opclass"]
    class_occ = np.empty((len(VOpClass), groups.shape[0]), dtype=np.float64)
    for cid, oc in enumerate(VOpClass):
        if oc is VOpClass.ARITH:
            class_occ[cid] = np.maximum(1, groups)
        elif oc is VOpClass.ARITH_HEAVY:
            class_occ[cid] = groups * vpu_model.HEAVY_CPE
        elif oc is VOpClass.REDUCE:
            class_occ[cid] = groups + tree + vpu_model.REDUCE_TREE_BASE
        elif oc is VOpClass.PERMUTE:
            class_occ[cid] = 2 * groups
        elif oc is VOpClass.MASK:
            class_occ[cid] = np.maximum(
                1, (va_vl + vpu.lanes * 8 - 1) // (vpu.lanes * 8))
        else:  # CSR / MEM never land in va_mask
            class_occ[cid] = 0.0
    va_occ = (class_occ[opclass, np.arange(groups.shape[0])]
              if groups.shape[0] else np.empty(0, dtype=np.float64))

    # -- vector memory (mirrors vpu_model.vmem_cost) ----------------------
    vm = rows[vm_mask]
    vm_lines_i = vm["n_line_reqs"]
    vm_dr = vm["dram_reads"]
    vm_addr = np.where(
        vm["pattern"] == _INDEXED_ID,
        vm["active"] / vpu.gather_issue_per_cycle,
        vm_lines_i / vpu.stride_issue_per_cycle,
    )
    vm_l2_lines = np.where(vm_lines_i >= vm_dr, vm_lines_i - vm_dr, 0
                           ).astype(np.float64)
    vm_txns = (vm_dr + vm["dram_writes"]).astype(np.float64)
    vm_first_kind = np.where(
        vm_dr > 0, FIRST_DRAM, np.where(vm_lines_i > 0, FIRST_L2, FIRST_NONE)
    ).astype(np.int8)

    # -- per-record walk lists --------------------------------------------
    lkind = np.asarray(kinds_arr, dtype=np.int64).copy()
    lkind[csr_mask] = LKIND_CSR
    slot = np.zeros(n, dtype=np.int64)
    for mask in (sc_mask, va_mask, vm_mask):
        slot[mask] = np.arange(int(mask.sum()))
    deps = rows["dep"]
    dep_targets = deps[deps >= 0]
    # The walk only records start/completion for vector records; a dep edge
    # into a scalar block (impossible for register dataflow) would read
    # stale zeros, so reject it up front.
    if dep_targets.size and np.any(lkind[dep_targets] == LKIND_SCALAR):
        raise EngineError("dependency edge points at a scalar block")

    total_reads = int(rows["dram_reads"].sum()
                      + rows["pf_dram_reads"][sc_mask].sum())
    total_writes = int(rows["dram_writes"].sum())

    return LoweredTrace(
        base=config,
        base_key=knob_free_config(config),
        n=n,
        kind=lkind.tolist(),
        dep=deps.tolist(),
        slot=slot.tolist(),
        scalar_dest=(rows["scalar_dest"] != 0).tolist(),
        sc_const=np.asarray(sc_issue + sc_stall_l2, dtype=np.float64),
        sc_l2_hits=sc["l2_hits"].astype(np.float64),
        sc_dram_reads=sc["dram_reads"].astype(np.float64),
        sc_p=sc_p.astype(np.float64),
        sc_bw_txns=sc_bw_txns,
        sc_issue=np.asarray(sc_issue, dtype=np.float64),
        sc_stall_l2=np.asarray(sc_stall_l2, dtype=np.float64),
        va_occ=np.asarray(va_occ, dtype=np.float64),
        vm_addr=np.asarray(vm_addr, dtype=np.float64),
        vm_lines=vm_lines_i.astype(np.float64),
        vm_l2_lines=vm_l2_lines,
        vm_txns=vm_txns,
        vm_dram_reads=vm_dr.astype(np.float64),
        vm_first_kind=vm_first_kind,
        total_dram_reads=total_reads,
        total_dram_writes=total_writes,
    )
