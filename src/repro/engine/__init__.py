"""Timing engines.

Three engines consume a :class:`repro.memory.classify.ClassifiedTrace`:

* :func:`repro.engine.fast_sim.simulate_fast` — a per-record analytical
  walk of the machine (scalar core + decoupled VPU + throttled memory).
  Milliseconds per run; the single-point reference for the batch engine.
* :func:`repro.engine.batch_sim.simulate_batch` — the sweep engine: lowers
  the classified trace once (:mod:`repro.engine.lower`) into flat
  knob-independent arrays, then times **all** sweep points in a single walk
  with the knob axis as a vectorized NumPy dimension. Bit-identical cycles
  to the fast engine at every point.
* :func:`repro.engine.event_sim.simulate_events` — a discrete-event
  reference model at line-request granularity. Slower, used to validate the
  analytical engines and for detailed single runs.

All share the cost models in :mod:`core_model` and :mod:`vpu_model`, so a
disagreement between them localizes to queueing/overlap behaviour, which is
exactly what the cross-validation tests probe.

``ENGINES`` maps engine names to single-trace entry points (each takes one
classified trace, returns one :class:`CycleReport`); ``FpgaSdv`` and the
CLI resolve ``engine=`` strings through it.
"""

from repro.engine.results import CycleReport
from repro.engine.fast_sim import simulate_fast
from repro.engine.event_sim import simulate_events
from repro.engine.lower import LoweredTrace, lower_trace
from repro.engine.batch_sim import (
    batch_cycles,
    simulate_batch,
    simulate_batch_one,
)

#: name -> ClassifiedTrace -> CycleReport registry (one entry per engine).
ENGINES = {
    "fast": simulate_fast,
    "event": simulate_events,
    "batch": simulate_batch_one,
}

__all__ = [
    "CycleReport",
    "ENGINES",
    "LoweredTrace",
    "batch_cycles",
    "lower_trace",
    "simulate_batch",
    "simulate_batch_one",
    "simulate_events",
    "simulate_fast",
]
