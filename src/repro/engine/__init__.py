"""Timing engines.

Two engines consume a :class:`repro.memory.classify.ClassifiedTrace`:

* :func:`repro.engine.fast_sim.simulate_fast` — a vectorized/per-record
  analytical walk of the machine (scalar core + decoupled VPU + throttled
  memory). Used for all sweeps; milliseconds per run.
* :func:`repro.engine.event_sim.simulate_events` — a discrete-event
  reference model at line-request granularity. Slower, used to validate the
  fast engine and for detailed single runs.

Both share the cost models in :mod:`core_model` and :mod:`vpu_model`, so a
disagreement between them localizes to queueing/overlap behaviour, which is
exactly what the cross-validation tests probe.
"""

from repro.engine.results import CycleReport
from repro.engine.fast_sim import simulate_fast
from repro.engine.event_sim import simulate_events

__all__ = ["CycleReport", "simulate_fast", "simulate_events"]
