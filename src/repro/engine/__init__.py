"""Timing engines.

Four engines consume a :class:`repro.memory.classify.ClassifiedTrace`:

* :func:`repro.engine.fast_sim.simulate_fast` — a per-record analytical
  walk of the machine (scalar core + decoupled VPU + throttled memory).
  Milliseconds per run; the single-point reference for the batch engine.
* :func:`repro.engine.batch_sim.simulate_batch` — the sweep engine: lowers
  the classified trace once (:mod:`repro.engine.lower`) into flat
  knob-independent arrays, then times **all** sweep points in a single walk
  with the knob axis as a vectorized NumPy dimension. Bit-identical cycles
  to the fast engine at every point.
* :func:`repro.engine.event_fast.simulate_events_fast` — the production
  discrete-event engine (``engine="event"``): array-backed per-instruction
  state machines stepped off an integer-cycle calendar queue, an order of
  magnitude faster than the coroutine reference while producing
  bit-identical reports.
* :func:`repro.engine.event_sim.simulate_events` — the coroutine
  discrete-event reference model (``engine="event-ref"``) at line-request
  granularity. The readable specification the fast event engine is checked
  against; use it to validate, not to sweep.

All share the cost models in :mod:`core_model` and :mod:`vpu_model` and the
two event engines additionally share the pre-quantized
:class:`repro.engine.event_common.EventPlan`, so a disagreement between
them localizes to queueing/overlap behaviour, which is exactly what the
cross-validation tests probe. See ``docs/engines.md`` for the full map.

``ENGINES`` maps engine names to single-trace entry points (each takes one
classified trace, returns one :class:`CycleReport`); ``FpgaSdv`` and the
CLI resolve ``engine=`` strings through it.
"""

from repro.engine.results import CycleReport
from repro.engine.fast_sim import simulate_fast
from repro.engine.event_fast import simulate_events_fast
from repro.engine.event_sim import simulate_events
from repro.engine.lower import LoweredTrace, lower_trace
from repro.engine.batch_sim import (
    batch_cycles,
    simulate_batch,
    simulate_batch_one,
)

#: name -> ClassifiedTrace -> CycleReport registry (one entry per engine).
ENGINES = {
    "fast": simulate_fast,
    "event": simulate_events_fast,
    "event-ref": simulate_events,
    "batch": simulate_batch_one,
}

__all__ = [
    "CycleReport",
    "ENGINES",
    "LoweredTrace",
    "batch_cycles",
    "lower_trace",
    "simulate_batch",
    "simulate_batch_one",
    "simulate_events",
    "simulate_events_fast",
    "simulate_fast",
]
