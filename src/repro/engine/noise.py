"""OS/measurement noise model (Section 3.2 methodology).

The paper reads the cycle-counter CSR, averages five runs, and reports that
run-to-run variation stays below 3% — so error bars are omitted. Our
simulator is deterministic; this module adds back the *measurement-protocol*
layer so experiments can be scripted exactly like on the FPGA:

* :class:`NoiseModel` — a seeded multiplicative jitter representing OS
  ticks, refresh collisions, and NFS interrupts on the emulated Linux. The
  default magnitude is calibrated so that 5-run spreads stay within the
  paper's <3% envelope.
* :func:`measure` — the five-run protocol: run, average, report the spread.

Sweeps use the noiseless engines directly (determinism is a feature for
regression testing); the measurement protocol exists for fidelity studies
and for tests of the protocol itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.util.prng import make_rng

#: the paper's observed bound on run-to-run variation
PAPER_VARIATION_BOUND = 0.03

#: number of runs averaged in the paper
PAPER_RUNS = 5


class NoiseModel:
    """Seeded multiplicative jitter applied to a cycle count.

    ``sigma`` is the standard deviation of the relative perturbation; the
    default 0.8% keeps a five-run max/min spread within the paper's 3%
    bound with very high probability while still being visible.
    """

    def __init__(self, sigma: float = 0.008, seed: int = 1234) -> None:
        if not 0 <= sigma < 0.2:
            raise ConfigError(f"noise sigma out of range: {sigma}")
        self.sigma = sigma
        self._rng = make_rng(seed, "os-noise")

    def perturb(self, cycles: float) -> float:
        """One measured sample of a true cycle count."""
        if cycles <= 0 or self.sigma == 0:
            return cycles
        factor = 1.0 + self._rng.normal(0.0, self.sigma)
        # noise only ever *adds* work on a real machine; fold the gaussian
        return cycles * max(1.0, factor)


@dataclass(frozen=True)
class MeasuredValue:
    """Outcome of the five-run measurement protocol."""

    mean: float
    samples: tuple[float, ...]

    @property
    def spread(self) -> float:
        """(max - min) / mean — what the paper bounds by 3%."""
        if self.mean == 0:
            return 0.0
        return (max(self.samples) - min(self.samples)) / self.mean

    @property
    def within_paper_bound(self) -> bool:
        return self.spread < PAPER_VARIATION_BOUND


def measure(time_fn, *, runs: int = PAPER_RUNS,
            noise: NoiseModel | None = None) -> MeasuredValue:
    """Apply the paper's protocol: ``runs`` timed executions, averaged.

    ``time_fn`` returns the true cycle count of one run (e.g.
    ``lambda: sdv.time(trace).cycles``); ``noise`` perturbs each sample as
    the emulated system's OS would.
    """
    if runs < 1:
        raise ConfigError(f"runs must be >= 1, got {runs}")
    noise = noise if noise is not None else NoiseModel()
    samples = tuple(noise.perturb(float(time_fn())) for _ in range(runs))
    return MeasuredValue(mean=float(np.mean(samples)), samples=samples)
