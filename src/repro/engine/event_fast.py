"""Array-backed discrete-event engine (``engine="event"``).

This is the default event backend: it replays **exactly** the schedule of
the coroutine reference engine (:mod:`repro.engine.event_sim`,
``engine="event-ref"``) — same cycles, same breakdown, same component
stats, same timeline — but replaces every piece of interpreter-heavy
machinery on the hot path:

* **generator coroutines → explicit state machines.** Each in-flight
  instruction is a small integer state plus a few slots in parallel
  lists, driven off the shared :class:`~repro.engine.event_common
  .EventPlan` tables (lowered once per classified trace). Resuming a
  waiter is an integer dispatch, not a ``gen.send`` frame switch.
* **heapq → calendar queue.** Future events live in a bucketed event
  wheel of ``_WHEEL`` one-cycle slots with a Python-int occupancy bitmask;
  the next active timestamp is found with one rotate-and-count-trailing-
  zeros on the mask instead of O(log n) heap pops. Events beyond the
  wheel horizon (long latency-knob flights) overflow into a small heap
  and are migrated eagerly — at every clock advance, every overflow entry
  now within the horizon moves into its bucket *before* the bucket
  drains, which keeps overflow entries ahead of same-cycle wheel-direct
  entries, exactly reproducing the reference kernel's global
  schedule-order tie-break.
* **Event objects → pooled slabs + packed tokens.** A scheduled item is
  one int ``kind | (arg << 4)``; line requests recycle slots in
  structure-of-arrays slabs instead of allocating per-request objects.
* **batched component stepping.** Each component steps once per active
  timestamp: a bucket drain hands the whole batch of same-cycle tokens to
  the dispatch loop, and the L2 bank ports are analytic unit-rate servers
  (``grant = max(arrival, prev_grant + 1)``) rather than two extra event
  hops per line.

The scheduling contract with the reference engine (see
``docs/engines.md``): every ``yield`` in a reference coroutine maps to
one scheduled token here, at the same timestamp, in the same order —
zero-delay events append to a same-cycle FIFO drained after the bucket,
event callbacks run inline at the fire token, resource grants are one
zero-delay hop. The equality tests in
``tests/engine/test_event_fast.py`` pin bit-identical reports, timelines
and attribution ladders across the kernel×VL×latency×bandwidth grid.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.engine import core_model, vpu_model
from repro.engine.event_common import EventPlan, event_plan
from repro.engine.lower import (
    LKIND_BARRIER,
    LKIND_CSR,
    LKIND_SCALAR,
    LKIND_VARITH,
    LKIND_VMEM,
)
from repro.engine.results import CycleReport
from repro.errors import EngineError
from repro.memory.bandwidth_limiter import BandwidthLimiter
from repro.memory.classify import AccessLevel, ClassifiedTrace
from repro.memory.latency_controller import LatencyController
from repro.memory.noc import MeshNoc

_DISPATCH = int(core_model.VECTOR_DISPATCH_CYCLES)
_VSETVL = int(core_model.VSETVL_CYCLES)
_TRANSFER = int(core_model.SCALAR_RESULT_TRANSFER_CYCLES)
_LPD = int(vpu_model.LANE_PIPE_DEPTH)
_DRAM = int(AccessLevel.DRAM)
_L1 = int(AccessLevel.L1)

# calendar-queue geometry: one-cycle buckets, power-of-two horizon
_WHEEL = 4096
_WMASK = _WHEEL - 1
_WFULL = (1 << _WHEEL) - 1

# token kinds (low 4 bits; arg in the high bits)
_T_CORE = 0   # scalar core state machine
_T_VA = 1     # vector-arithmetic record <arg>
_T_VM = 2     # vector-memory record <arg>
_T_LINE = 3   # line-request slab entry <arg>
_T_RESP = 4   # line response fire <arg>
_T_DONE = 5   # done-event fire for record <arg>
_T_CHAIN = 6  # chain-event fire for record <arg>
_T_WB = 7     # writeback arrival at the DRAM channel
_T_BAR = 8    # barrier child completion

# scalar-core states
_CS_SC = 0          # inside a scalar block (sc_phase drives)
_CS_DISPATCHED = 1  # vector dispatch cycle elapsed
_CS_SLOT = 2        # decoupled-queue slot granted
_CS_SDEST = 3       # scalar-dest done-wait satisfied
_CS_XFER = 4        # scalar-result transfer elapsed
_CS_BARRIER = 5     # all barrier children done
_CS_CSR = 6         # vsetvl cycles elapsed

# scalar-block sub-phases
_SCP_GAP = 0    # apply issue gap for op j
_SCP_LEVEL = 1  # classify op j (post-gap)
_SCP_SPAWN = 2  # MSHR slot freed: spawn op j
_SCP_DRAIN = 3  # draining outstanding misses
_SCP_END = 4    # no-mem issue timeout elapsed

# vector-arith states
_VA_GRANT = 0    # arith pipe granted
_VA_CHAINED = 1  # producer chain fired
_VA_READY = 2    # operand wait satisfied
_VA_OCC = 3      # occupancy elapsed
_VA_LAT = 4      # pipeline latency elapsed
_VA_FLOOR = 5    # floor producer done
_VA_FIN = 6      # floor timeout elapsed

# vector-memory states
_VM_CHAINED_PRE = 0   # (OoO) producer chain fired
_VM_DEP_PRE = 1       # (OoO) operand wait satisfied: claim AGU
_VM_AGU = 2           # (OoO) AGU granted
_VM_AGU2 = 3          # (in-order) AGU granted: wait operands
_VM_CHAINED_POST = 4  # (in-order) producer chain fired
_VM_READY = 5         # operand wait satisfied
_VM_GAP = 6           # AGU issue gap elapsed: spawn line j
_VM_ALL = 7           # all line responses arrived
_VM_FLOOR = 8         # floor producer done
_VM_FIN = 9           # floor timeout elapsed

# line-request stages
_LS_PRE = 0      # pre-delay (scalar L1 lookup) elapsed
_LS_MSHR = 1     # line MSHR granted
_LS_ARRIVE = 2   # request arrived at the bank
_LS_LIMITER = 3  # bank access done: DRAM admission
_LS_DONE = 4     # response back at the core


class _FastSim:
    """One run: calendar queue + state-machine slabs."""

    def __init__(self, ct: ClassifiedTrace, plan: EventPlan,
                 timeline, intro: bool = False) -> None:
        cfg = ct.config
        self.plan = plan
        self.timeline = timeline
        # introspection (repro.obs.engine_stats): resolved once per run by
        # simulate_events_fast; the hot loop reads a hoisted local
        self.intro = intro
        self.intro_timestamps = 0
        self.intro_tokens = 0
        self.intro_max_drain = 0
        self.intro_max_occupancy = 0
        self.chaining = cfg.vpu.chaining
        self.ooo = cfg.vpu.ooo_mem_issue

        self.limiter = BandwidthLimiter(cfg.mem.bw_num, cfg.mem.bw_den)
        self.latency_ctl = LatencyController(cfg.mem.extra_latency_cycles)
        self.access = int(cfg.l2.access_cycles)
        self.dram_service = int(cfg.mem.dram_service_cycles)
        self.l1_hit = int(cfg.core.l1_hit_cycles)
        self.arith_lat = int(vpu_model.arith_latency(cfg))
        self.n_banks = cfg.l2.banks
        nodes = cfg.noc.nodes

        noc = MeshNoc(cfg.noc)
        self.hops_tab = [noc.hops(noc.core_node, b % nodes)
                         for b in range(self.n_banks)]
        self.lat_tab = [cfg.noc.inject_cycles + h * cfg.noc.hop_cycles
                        for h in self.hops_tab]
        self.noc_msgs = 0
        self.noc_hops = 0
        self.noc_lat = 0

        # analytic unit-rate bank-port servers (same recurrence as the
        # reference engine's collapsed FIFO ports)
        self.bank_free = [0] * self.n_banks
        self.bank_wait = 0

        # FIFO resources: busy flags / counters + queued waiter tokens
        self.pipe_busy = False
        self.pipe_q: deque[int] = deque()
        self.agu_busy = False
        self.agu_q: deque[int] = deque()
        self.slots_used = 0
        self.slots_cap = cfg.vpu.mem_queue_depth
        self.slots_q: deque[int] = deque()
        self.mshr_used = 0
        self.mshr_cap = cfg.vpu.line_mshrs
        self.mshr_q: deque[int] = deque()

        n = plan.n
        # done/chain tri-state: 0 untriggered, 1 fire scheduled, 2 processed
        self.done_state = [0] * n
        self.chain_state = [0] * n
        self.done_waiters: list[list[int]] = [[] for _ in range(n)]
        self.chain_waiters: list[list[int]] = [[] for _ in range(n)]
        self.done_time = [-1] * n
        self.pending: set[int] = set()

        self.va_state = [0] * n
        self.va_tb = [0] * n
        self.vm_state = [0] * n
        self.vm_tb = [0] * n
        self.vm_j = [0] * n
        self.vm_wbleft = [0] * n
        self.vm_live = [0] * n
        self.vm_waiting = [False] * n

        # line-request slabs (structure of arrays, recycled via free list)
        self.ln_bank: list[int] = []
        self.ln_level: list[int] = []
        self.ln_vector: list[bool] = []
        self.ln_owner: list[int] = []
        self.ln_first: list[bool] = []
        self.ln_state: list[int] = []
        self.ln_stage: list[int] = []
        self.ln_waiter: list[int | None] = []
        self.ln_free: list[int] = []

        # scalar core
        self.core_i = 0
        self.core_state = _CS_SC
        self.core_t0 = 0
        self.bar_count = 0
        self.sc_i = 0
        self.sc_slot = 0
        self.sc_j = 0
        self.sc_t0 = 0
        self.sc_phase = 0
        self.sc_wb = 0
        self.sc_pf = 0
        self.sc_out: deque[int] = deque()

        # calendar queue
        self.now = 0
        self.occ = 0
        self.wheel: list[list[int]] = [[] for _ in range(_WHEEL)]
        self.overflow: list[tuple[int, int, int]] = []
        self._oseq = 0
        self._curq: list[int] = []
        self._running = False

        self.wb_tail = 0
        self.acc_issue = 0
        self.acc_stall = 0
        self.acc_varith = 0
        self.acc_vmem = 0

    # ------------------------------------------------------------- scheduler

    def _at(self, tok: int, t: int) -> None:
        """Schedule token ``tok`` at absolute integer time ``t``."""
        now = self.now
        if t == now and self._running:
            self._curq.append(tok)
            return
        d = t - now
        if d < 0:
            raise EngineError("time went backwards")
        if d < _WHEEL:
            s = t & _WMASK
            b = self.wheel[s]
            if not b:
                self.occ |= 1 << s
            b.append(tok)
        else:
            heapq.heappush(self.overflow, (t, self._oseq, tok))
            self._oseq += 1

    def _run(self) -> None:
        # Hot loop. The two dominant token kinds at paper scale — line
        # pipeline stages and line responses, ~80% of all traffic — are
        # handled inline with local aliases; everything else (and every
        # reentrant waiter execution) goes through the generic
        # :meth:`_exec`. The inline branches must stay byte-for-byte
        # equivalent to :meth:`_line_step` / :meth:`_resp_fire`.
        wheel = self.wheel
        overflow = self.overflow
        curq = self._curq
        curq_app = curq.append
        heappop = heapq.heappop
        exec_ = self._exec
        done_state = self.done_state
        done_waiters = self.done_waiters
        chain_waiters = self.chain_waiters
        # accumulators kept in locals for the duration of the run; cold
        # paths update the attributes, both are merged after the loop
        noc_msgs = 0
        noc_hops = 0
        noc_lat = 0
        bank_wait = 0
        wb_tail = 0
        ln_bank = self.ln_bank
        ln_level = self.ln_level
        ln_vector = self.ln_vector
        ln_owner = self.ln_owner
        ln_first = self.ln_first
        ln_state = self.ln_state
        ln_stage = self.ln_stage
        ln_waiter = self.ln_waiter
        ln_recycle = self.ln_free.append
        bank_free = self.bank_free
        hops_tab = self.hops_tab
        lat_tab = self.lat_tab
        access = self.access
        dram_service = self.dram_service
        limiter = self.limiter
        limiter_admit = limiter.admit
        # peak bandwidth (one request per cycle) collapses the limiter to a
        # next-free-cycle counter; inline it and count latency-controller
        # stats locally (its delay term is loop-invariant)
        lim_den1 = limiter._den == 1
        lat_extra = self.latency_ctl._extra
        lat_n = 0
        mshr_q = self.mshr_q
        mshr_cap = self.mshr_cap
        agu_q = self.agu_q
        chain_state = self.chain_state
        vm_live = self.vm_live
        vm_waiting = self.vm_waiting
        vm_state = self.vm_state
        ln_free = self.ln_free
        plan = self.plan
        p_slot = plan.slot
        p_vm_steps = plan.vm_steps
        p_vm_levels = plan.vm_levels
        p_vm_banks = plan.vm_banks
        p_vm_n = plan.vm_n
        vm_j = self.vm_j
        vm_wbleft = self.vm_wbleft
        # introspection accumulators: touched once per active *timestamp*
        # (never per token) and only when enabled, so the disabled cost is
        # one local boolean check per timestamp
        intro = self.intro
        i_ts = 0
        i_tokens = 0
        i_max_drain = 0
        i_max_occ = 0
        self._running = True
        try:
            while self.occ or overflow:
                occ = self.occ
                if occ:
                    cur = self.now & _WMASK
                    # deltas are small on dense traces: probe the next few
                    # slots directly (bucket non-empty <=> occupancy bit)
                    # before paying for a big-int scan of the mask
                    t = -1
                    for k in range(9):
                        if wheel[(cur + k) & _WMASK]:
                            t = self.now + k
                            break
                    if t < 0:
                        # next occupied slot at or after the current one;
                        # every occupied slot holds a time in
                        # [now, now + _WHEEL), so the wrapped bits are
                        # exactly the slots below `cur`
                        high = occ >> cur
                        if high:
                            t = self.now + (high & -high).bit_length() - 1
                        else:
                            t = (self.now + _WHEEL - cur
                                 + (occ & -occ).bit_length() - 1)
                    if overflow and overflow[0][0] < t:
                        t = overflow[0][0]
                else:
                    t = overflow[0][0]
                self.now = t
                # eager migration keeps overflow entries ahead of same-cycle
                # wheel-direct entries (global schedule order)
                while overflow and overflow[0][0] - t < _WHEEL:
                    ot, _, tok = heappop(overflow)
                    s = ot & _WMASK
                    b = wheel[s]
                    if not b:
                        self.occ |= 1 << s
                    b.append(tok)
                s = t & _WMASK
                b = wheel[s]
                if b:
                    # curq is empty between timestamps, so the bucket batch
                    # simply seeds the same-cycle FIFO
                    wheel[s] = []
                    self.occ &= ~(1 << s)
                    curq.extend(b)
                # a list iterator sees elements appended during iteration,
                # which is exactly the same-cycle FIFO semantics: tokens
                # scheduled "now" run after everything already queued
                for tok in curq:
                    code = tok & 15
                    if code == _T_LINE:
                        lid = tok >> 4
                        stage = ln_stage[lid]
                        if stage == _LS_ARRIVE:
                            bank = ln_bank[lid]
                            grant = bank_free[bank]
                            if grant < t:
                                grant = t
                            bank_free[bank] = grant + 1
                            bank_wait += grant - t
                            at = grant + access
                            if ln_level[lid] == _DRAM:
                                ln_stage[lid] = _LS_LIMITER
                            else:
                                noc_msgs += 1
                                noc_hops += hops_tab[bank]
                                lat = lat_tab[bank]
                                noc_lat += lat
                                at += lat
                                ln_stage[lid] = _LS_DONE
                        elif stage == _LS_LIMITER:
                            if lim_den1:
                                admit = (limiter._window_start
                                         + limiter._window_used)
                                if admit < t:
                                    admit = t
                                limiter._window_start = admit
                                limiter._window_used = 1
                                limiter.admitted += 1
                                if admit > t:
                                    limiter.throttle_cycles += admit - t
                            else:
                                admit = int(limiter_admit(t))
                            lat_n += 1
                            bank = ln_bank[lid]
                            noc_msgs += 1
                            noc_hops += hops_tab[bank]
                            lat = lat_tab[bank]
                            noc_lat += lat
                            at = admit + lat_extra + dram_service + lat
                            ln_stage[lid] = _LS_DONE
                        elif stage == _LS_DONE:
                            if ln_vector[lid] and ln_level[lid] == _DRAM:
                                if mshr_q:
                                    curq_app(mshr_q.popleft())
                                else:
                                    self.mshr_used -= 1
                            ln_state[lid] = 1
                            curq_app(_T_RESP | lid << 4)
                            continue
                        elif stage == _LS_MSHR:  # granted: head for the bank
                            bank = ln_bank[lid]
                            noc_msgs += 1
                            noc_hops += hops_tab[bank]
                            lat = lat_tab[bank]
                            noc_lat += lat
                            ln_stage[lid] = _LS_ARRIVE
                            at = t + lat
                        else:  # _LS_PRE: cold path (scalar L1 lookups)
                            self._line_step(lid)
                            continue
                        d = at - t
                        if d == 0:
                            curq_app(tok)
                        elif d < _WHEEL:
                            sl = at & _WMASK
                            b = wheel[sl]
                            if not b:
                                self.occ |= 1 << sl
                            b.append(tok)
                        else:
                            heapq.heappush(overflow, (at, self._oseq, tok))
                            self._oseq += 1
                    elif code == _T_VM:
                        r = tok >> 4
                        if vm_state[r] != _VM_GAP:
                            self._vm_step(r)
                            continue
                        # gap elapsed: spawn line j of record r and every
                        # zero-gap follower, then either suspend for the
                        # next positive gap or run the record-complete
                        # tail — all inline (mirrors _vm_issue).
                        slot = p_slot[r]
                        j = vm_j[r]
                        banks = p_vm_banks[slot]
                        levels = p_vm_levels[slot]
                        steps = p_vm_steps[slot]
                        nl = p_vm_n[slot]
                        live = vm_live[r]
                        wbleft = vm_wbleft[r]
                        while True:
                            bank = banks[j]
                            level = levels[j]
                            if ln_free:
                                lid = ln_free.pop()
                                ln_bank[lid] = bank
                                ln_level[lid] = level
                                ln_vector[lid] = True
                                ln_owner[lid] = r
                                ln_first[lid] = (j == 0
                                                 and chain_state[r] == 0)
                                ln_state[lid] = 0
                                ln_waiter[lid] = None
                            else:
                                lid = len(ln_bank)
                                ln_bank.append(bank)
                                ln_level.append(level)
                                ln_vector.append(True)
                                ln_owner.append(r)
                                ln_first.append(j == 0
                                                and chain_state[r] == 0)
                                ln_state.append(0)
                                ln_stage.append(0)
                                ln_waiter.append(None)
                            live += 1
                            ltok = _T_LINE | lid << 4
                            if level == _DRAM:
                                ln_stage[lid] = _LS_MSHR
                                if self.mshr_used < mshr_cap:
                                    self.mshr_used += 1
                                    curq_app(ltok)  # grant hop
                                else:
                                    mshr_q.append(ltok)
                            else:
                                noc_msgs += 1
                                noc_hops += hops_tab[bank]
                                lat = lat_tab[bank]
                                noc_lat += lat
                                ln_stage[lid] = _LS_ARRIVE
                                if 0 < lat < _WHEEL:
                                    at = t + lat
                                    sl = at & _WMASK
                                    b = wheel[sl]
                                    if not b:
                                        self.occ |= 1 << sl
                                    b.append(ltok)
                                else:
                                    self._at(ltok, t + lat)
                            if wbleft > 0:
                                wbleft -= 1
                                noc_msgs += 1
                                noc_hops += hops_tab[bank]
                                lat = lat_tab[bank]
                                noc_lat += lat
                                if 0 < lat < _WHEEL:
                                    at = t + lat
                                    sl = at & _WMASK
                                    b = wheel[sl]
                                    if not b:
                                        self.occ |= 1 << sl
                                    b.append(_T_WB)
                                else:
                                    self._at(_T_WB, t + lat)
                            j += 1
                            if j >= nl:
                                vm_live[r] = live
                                vm_wbleft[r] = wbleft
                                # record fully issued: free the AGU, wait
                                if agu_q:
                                    curq_app(agu_q.popleft())
                                else:
                                    self.agu_busy = False
                                if live == 0:
                                    vm_state[r] = _VM_ALL
                                    curq_app(tok)
                                else:
                                    vm_waiting[r] = True
                                break
                            stp = steps[j]
                            if stp > 0:
                                vm_j[r] = j
                                vm_live[r] = live
                                vm_wbleft[r] = wbleft
                                if stp < _WHEEL:
                                    at = t + stp
                                    sl = at & _WMASK
                                    b = wheel[sl]
                                    if not b:
                                        self.occ |= 1 << sl
                                    b.append(tok)
                                else:
                                    self._at(tok, t + stp)
                                break
                            # zero gap: spawn the next line immediately
                    elif code == _T_RESP:
                        lid = tok >> 4
                        ln_state[lid] = 2
                        r = ln_owner[lid]
                        if r >= 0:
                            if ln_first[lid] and chain_state[r] == 0:
                                chain_state[r] = 1
                                curq_app(_T_CHAIN | r << 4)
                            live = vm_live[r] - 1
                            vm_live[r] = live
                            if live == 0 and vm_waiting[r]:
                                vm_waiting[r] = False
                                vm_state[r] = _VM_ALL
                                curq_app(_T_VM | r << 4)
                            ln_recycle(lid)
                        else:
                            w = ln_waiter[lid]
                            if w is not None:
                                ln_waiter[lid] = None
                                ln_recycle(lid)
                                exec_(w)
                    elif code == _T_WB:
                        if lim_den1:
                            admit = (limiter._window_start
                                     + limiter._window_used)
                            if admit < t:
                                admit = t
                            limiter._window_start = admit
                            limiter._window_used = 1
                            limiter.admitted += 1
                            if admit > t:
                                limiter.throttle_cycles += admit - t
                        else:
                            admit = int(limiter_admit(t))
                        lat_n += 1
                        at = admit + lat_extra + dram_service
                        if at > wb_tail:
                            wb_tail = at
                    elif code == _T_DONE:
                        r = tok >> 4
                        done_state[r] = 2
                        w = done_waiters[r]
                        if w:
                            done_waiters[r] = []
                            for wt in w:
                                exec_(wt)
                    elif code == _T_CHAIN:
                        r = tok >> 4
                        chain_state[r] = 2
                        w = chain_waiters[r]
                        if w:
                            chain_waiters[r] = []
                            for wt in w:
                                exec_(wt)
                    elif code == _T_CORE:
                        self._core_step()
                    elif code == _T_VA:
                        self._va_step(tok >> 4)
                    else:
                        exec_(tok)
                if intro:
                    i_ts += 1
                    d = len(curq)  # bucket batch + same-cycle appends
                    i_tokens += d
                    if d > i_max_drain:
                        i_max_drain = d
                    if not i_ts & 15:
                        # wheel occupancy is a sampled high-watermark: the
                        # big-int popcount is the one expensive probe here,
                        # so it runs every 16th active timestamp (the
                        # exact counters above stay exact)
                        ob = self.occ.bit_count()
                        if ob > i_max_occ:
                            i_max_occ = ob
                del curq[:]
        finally:
            self._running = False
            self.noc_msgs += noc_msgs
            self.noc_hops += noc_hops
            self.noc_lat += noc_lat
            self.bank_wait += bank_wait
            if wb_tail > self.wb_tail:
                self.wb_tail = wb_tail
            lc = self.latency_ctl
            lc.requests += lat_n
            lc.added_cycles += lat_n * lat_extra
            if lim_den1:
                # inline den==1 admissions bypass limiter.admit(); keep its
                # fast-path counter (an attribute, NOT part of the pinned
                # ``stats`` dict) consistent with the reference engine
                limiter.fast_admits += lat_n
            if intro:
                self.intro_timestamps += i_ts
                self.intro_tokens += i_tokens
                if i_max_drain > self.intro_max_drain:
                    self.intro_max_drain = i_max_drain
                if i_max_occ > self.intro_max_occupancy:
                    self.intro_max_occupancy = i_max_occ

    def _exec(self, tok: int) -> None:
        code = tok & 15
        arg = tok >> 4
        if code == _T_LINE:
            self._line_step(arg)
        elif code == _T_RESP:
            self._resp_fire(arg)
        elif code == _T_CORE:
            self._core_step()
        elif code == _T_VM:
            self._vm_step(arg)
        elif code == _T_VA:
            self._va_step(arg)
        elif code == _T_DONE:
            self._done_fire(arg)
        elif code == _T_CHAIN:
            self._chain_fire(arg)
        elif code == _T_WB:
            self._wb_arrive()
        else:
            self._bar_child()

    # ------------------------------------------------------- events & waits

    def _wait_done(self, i: int, tok: int) -> None:
        if self.done_state[i] == 2:
            self._at(tok, self.now)  # already processed: boot hop
        else:
            self.done_waiters[i].append(tok)

    def _wait_chain(self, i: int, tok: int) -> None:
        if self.chain_state[i] == 2:
            self._at(tok, self.now)
        else:
            self.chain_waiters[i].append(tok)

    def _done_fire(self, i: int) -> None:
        self.done_state[i] = 2
        w = self.done_waiters[i]
        if w:
            self.done_waiters[i] = []
            for tok in w:
                self._exec(tok)

    def _chain_fire(self, i: int) -> None:
        self.chain_state[i] = 2
        w = self.chain_waiters[i]
        if w:
            self.chain_waiters[i] = []
            for tok in w:
                self._exec(tok)

    def _finish(self, i: int) -> None:
        now = self.now
        self.done_time[i] = now
        if self.done_state[i] == 0:
            self.done_state[i] = 1
            self._at(_T_DONE | i << 4, now)
        if self.chain_state[i] == 0:
            self.chain_state[i] = 1
            self._at(_T_CHAIN | i << 4, now)
        self.pending.discard(i)

    # ------------------------------------------------------------ memory path

    def _noc_msg(self, bank: int) -> int:
        self.noc_msgs += 1
        self.noc_hops += self.hops_tab[bank]
        lat = self.lat_tab[bank]
        self.noc_lat += lat
        return lat

    def _spawn_line(self, bank: int, level: int, pre_delay: int,
                    owner: int, first: bool, vector: bool) -> int:
        free = self.ln_free
        if free:
            lid = free.pop()
            self.ln_bank[lid] = bank
            self.ln_level[lid] = level
            self.ln_vector[lid] = vector
            self.ln_owner[lid] = owner
            self.ln_first[lid] = first
            self.ln_state[lid] = 0
            self.ln_waiter[lid] = None
        else:
            lid = len(self.ln_bank)
            self.ln_bank.append(bank)
            self.ln_level.append(level)
            self.ln_vector.append(vector)
            self.ln_owner.append(owner)
            self.ln_first.append(first)
            self.ln_state.append(0)
            self.ln_stage.append(0)
            self.ln_waiter.append(None)
        if pre_delay > 0:
            self.ln_stage[lid] = _LS_PRE
            self._at(_T_LINE | lid << 4, self.now + pre_delay)
        elif vector and level == _DRAM:
            self._line_mshr(lid)
        else:
            self._line_noc_out(lid)
        return lid

    def _line_mshr(self, lid: int) -> None:
        self.ln_stage[lid] = _LS_MSHR
        tok = _T_LINE | lid << 4
        if self.mshr_used < self.mshr_cap:
            self.mshr_used += 1
            self._at(tok, self.now)  # grant hop
        else:
            self.mshr_q.append(tok)

    def _line_noc_out(self, lid: int) -> None:
        lat = self._noc_msg(self.ln_bank[lid])
        self.ln_stage[lid] = _LS_ARRIVE
        self._at(_T_LINE | lid << 4, self.now + lat)

    def _line_step(self, lid: int) -> None:
        stage = self.ln_stage[lid]
        if stage == _LS_ARRIVE:
            bank = self.ln_bank[lid]
            now = self.now
            grant = self.bank_free[bank]
            if grant < now:
                grant = now
            self.bank_free[bank] = grant + 1
            self.bank_wait += grant - now
            wait = grant - now + self.access
            if self.ln_level[lid] == _DRAM:
                self.ln_stage[lid] = _LS_LIMITER
                self._at(_T_LINE | lid << 4, now + wait)
            else:
                back = self._noc_msg(bank)
                self.ln_stage[lid] = _LS_DONE
                self._at(_T_LINE | lid << 4, now + wait + back)
        elif stage == _LS_LIMITER:
            now = self.now
            admit = int(self.limiter.admit(now))
            extra = int(self.latency_ctl.delay(admit)) - admit
            back = self._noc_msg(self.ln_bank[lid])
            self.ln_stage[lid] = _LS_DONE
            self._at(_T_LINE | lid << 4,
                     admit + extra + self.dram_service + back)
        elif stage == _LS_DONE:
            if self.ln_vector[lid] and self.ln_level[lid] == _DRAM:
                if self.mshr_q:
                    self._at(self.mshr_q.popleft(), self.now)
                else:
                    self.mshr_used -= 1
            self.ln_state[lid] = 1
            self._at(_T_RESP | lid << 4, self.now)
        elif stage == _LS_PRE:
            if self.ln_vector[lid] and self.ln_level[lid] == _DRAM:
                self._line_mshr(lid)
            else:
                self._line_noc_out(lid)
        else:  # _LS_MSHR: granted
            self._line_noc_out(lid)

    def _resp_fire(self, lid: int) -> None:
        self.ln_state[lid] = 2
        r = self.ln_owner[lid]
        if r >= 0:
            # chain-ready fires with the first response, before the
            # all-responses accounting (reference callback order)
            if self.ln_first[lid] and self.chain_state[r] == 0:
                self.chain_state[r] = 1
                self._at(_T_CHAIN | r << 4, self.now)
            self.vm_live[r] -= 1
            if self.vm_waiting[r] and self.vm_live[r] == 0:
                self.vm_waiting[r] = False
                self.vm_state[r] = _VM_ALL
                self._at(_T_VM | r << 4, self.now)
            self.ln_free.append(lid)
        else:
            w = self.ln_waiter[lid]
            if w is not None:
                self.ln_waiter[lid] = None
                self.ln_free.append(lid)
                self._exec(w)
            # else: the scalar core consumes (and recycles) it on its next
            # outstanding-queue pop

    def _spawn_wb(self, bank: int) -> None:
        lat = self._noc_msg(bank)
        self._at(_T_WB, self.now + lat)

    def _wb_arrive(self) -> None:
        now = self.now
        admit = int(self.limiter.admit(now))
        extra = int(self.latency_ctl.delay(admit)) - admit
        t = admit + extra + self.dram_service
        if t > self.wb_tail:
            self.wb_tail = t

    # ------------------------------------------------------------------- core

    def _core_advance(self) -> None:
        plan = self.plan
        n = plan.n
        while True:
            i = self.core_i
            if i >= n:
                return
            kind = plan.kind[i]
            if kind == LKIND_SCALAR:
                self.core_t0 = self.now
                if self._sc_begin(i):
                    if self.timeline is not None:
                        self.timeline.add("scalar-core", f"scalar[{i}]",
                                          self.core_t0, self.now)
                    self._finish(i)
                    self.core_i += 1
                    continue
                return
            if kind == LKIND_BARRIER:
                cnt = 0
                for j in sorted(self.pending):
                    # pending records are unfinished: done not yet fired
                    self.done_waiters[j].append(_T_BAR)
                    cnt += 1
                if cnt:
                    self.bar_count = cnt
                    self.core_state = _CS_BARRIER
                    return
                if self.timeline is not None:
                    self.timeline.instant("scalar-core", f"barrier[{i}]",
                                          self.now)
                self._finish(i)
                self.core_i += 1
                continue
            if kind == LKIND_CSR:
                self.core_state = _CS_CSR
                self._at(_T_CORE, self.now + _VSETVL)
                return
            self.core_state = _CS_DISPATCHED
            self._at(_T_CORE, self.now + _DISPATCH)
            return

    def _core_step(self) -> None:
        st = self.core_state
        i = self.core_i
        if st == _CS_SC:
            if self._sc_issue():
                self._sc_done()
        elif st == _CS_DISPATCHED:
            if self.plan.kind[i] == LKIND_VARITH:
                self.pending.add(i)
                self._va_spawn(i)
                self._core_post_dispatch(i)
            else:  # vector memory: decoupled-queue slot first
                self.core_state = _CS_SLOT
                if self.slots_used < self.slots_cap:
                    self.slots_used += 1
                    self._at(_T_CORE, self.now)  # grant hop
                else:
                    self.slots_q.append(_T_CORE)
        elif st == _CS_SLOT:
            self.pending.add(i)
            self._vm_spawn(i)
            self._core_post_dispatch(i)
        elif st == _CS_SDEST:
            self.core_state = _CS_XFER
            self._at(_T_CORE, self.now + _TRANSFER)
        elif st == _CS_XFER:
            self.core_i += 1
            self._core_advance()
        elif st == _CS_BARRIER:
            if self.timeline is not None:
                self.timeline.instant("scalar-core", f"barrier[{i}]",
                                      self.now)
            self._finish(i)
            self.core_i += 1
            self._core_advance()
        else:  # _CS_CSR
            self._finish(i)
            self.core_i += 1
            self._core_advance()

    def _core_post_dispatch(self, i: int) -> None:
        if self.plan.scalar_dest[i]:
            self.core_state = _CS_SDEST
            self._wait_done(i, _T_CORE)
        else:
            self.core_i += 1
            self._core_advance()

    def _bar_child(self) -> None:
        self.bar_count -= 1
        if self.bar_count == 0:
            self._at(_T_CORE, self.now)  # the AllOf completion hop

    # ----------------------------------------------------------------- scalar

    def _sc_begin(self, i: int) -> bool:
        """Start scalar block ``i``; True if it completed inline."""
        plan = self.plan
        slot = plan.slot[i]
        self.sc_i = i
        if plan.sc_n_mem[slot] == 0:
            q = plan.sc_issue[slot]
            self.acc_issue += q
            if q > 0:
                self.core_state = _CS_SC
                self.sc_phase = _SCP_END
                self._at(_T_CORE, self.now + q)
                return False
            return True
        self.sc_slot = slot
        self.sc_t0 = self.now
        self.acc_issue += plan.sc_gap_total[slot]
        self.sc_j = 0
        self.sc_out.clear()
        self.sc_wb = plan.sc_wb[slot]
        self.sc_pf = plan.sc_pf[slot]
        self.sc_phase = _SCP_GAP
        self.core_state = _CS_SC
        return self._sc_issue()

    def _sc_issue(self) -> bool:
        """Advance the active scalar block; True when it has completed."""
        plan = self.plan
        slot = self.sc_slot
        phase = self.sc_phase
        if phase == _SCP_END:
            return True
        steps = plan.sc_steps[slot]
        levels = plan.sc_levels[slot]
        banks = plan.sc_banks[slot]
        n_mem = plan.sc_n_mem[slot]
        p = plan.sc_p[slot]
        out = self.sc_out
        j = self.sc_j
        while True:
            if phase == _SCP_GAP:
                if j >= n_mem:
                    phase = _SCP_DRAIN
                    continue
                s = steps[j]
                phase = _SCP_LEVEL
                if s > 0:
                    self.sc_j = j
                    self.sc_phase = _SCP_LEVEL
                    self._at(_T_CORE, self.now + s)
                    return False
                continue
            if phase == _SCP_LEVEL:
                if levels[j] == _L1:
                    j += 1
                    phase = _SCP_GAP
                    continue
                if len(out) >= p:
                    # FIFO MSHRs: wait for the oldest outstanding miss
                    lid = out.popleft()
                    self.sc_j = j
                    self.sc_phase = _SCP_SPAWN
                    if self.ln_state[lid] == 2:
                        self.ln_free.append(lid)
                        self._at(_T_CORE, self.now)  # boot hop
                    else:
                        self.ln_waiter[lid] = _T_CORE
                    return False
                phase = _SCP_SPAWN
                continue
            if phase == _SCP_SPAWN:
                bank = banks[j]
                out.append(self._spawn_line(bank, levels[j], self.l1_hit,
                                            -1, False, False))
                if self.sc_wb > 0:
                    self._spawn_wb(bank)
                    self.sc_wb -= 1
                if self.sc_pf > 0:
                    self._spawn_wb((bank + 1) % self.n_banks)
                    self.sc_pf -= 1
                j += 1
                phase = _SCP_GAP
                continue
            # _SCP_DRAIN: one wait (one reference `yield`) per entry
            while out:
                lid = out.popleft()
                self.sc_j = j
                self.sc_phase = _SCP_DRAIN
                if self.ln_state[lid] == 2:
                    self.ln_free.append(lid)
                    self._at(_T_CORE, self.now)  # boot hop
                else:
                    self.ln_waiter[lid] = _T_CORE
                return False
            while self.sc_wb > 0:  # writebacks beyond the miss count
                self._spawn_wb(0)
                self.sc_wb -= 1
            self.acc_stall += self.now - self.sc_t0 \
                - plan.sc_gap_total[slot]
            return True

    def _sc_done(self) -> None:
        i = self.sc_i
        if self.timeline is not None:
            self.timeline.add("scalar-core", f"scalar[{i}]",
                              self.core_t0, self.now)
        self._finish(i)
        self.core_i += 1
        self._core_advance()

    # ------------------------------------------------------ vector arithmetic

    def _va_spawn(self, i: int) -> None:
        # sync process start: first reference yield is the pipe request
        self.va_state[i] = _VA_GRANT
        tok = _T_VA | i << 4
        if not self.pipe_busy:
            self.pipe_busy = True
            self._at(tok, self.now)  # grant hop
        else:
            self.pipe_q.append(tok)

    def _va_step(self, i: int) -> None:
        st = self.va_state[i]
        tok = _T_VA | i << 4
        if st == _VA_GRANT:
            dep = self.plan.dep[i]
            if dep < 0:
                self._va_ready(i)
            elif self.chaining:
                self.va_state[i] = _VA_CHAINED
                self._wait_chain(dep, tok)
            else:
                self.va_state[i] = _VA_READY
                self._wait_done(dep, tok)
        elif st == _VA_CHAINED:
            self.va_state[i] = _VA_READY
            self._at(tok, self.now + _LPD)
        elif st == _VA_READY:
            self._va_ready(i)
        elif st == _VA_OCC:
            if self.pipe_q:
                self._at(self.pipe_q.popleft(), self.now)
            else:
                self.pipe_busy = False
            self.va_state[i] = _VA_LAT
            self._at(tok, self.now + self.arith_lat)
        elif st == _VA_LAT:
            dep = self.plan.dep[i]
            if dep >= 0 and self.chaining:
                self.va_state[i] = _VA_FLOOR
                self._wait_done(dep, tok)
            else:
                self._va_fin(i)
        elif st == _VA_FLOOR:
            target = self.done_time[self.plan.dep[i]] + _LPD
            if self.now < target:
                self.va_state[i] = _VA_FIN
                self._at(tok, target)
            else:
                self._va_fin(i)
        else:  # _VA_FIN
            self._va_fin(i)

    def _va_ready(self, i: int) -> None:
        if self.chain_state[i] == 0:
            self.chain_state[i] = 1  # consumers may chain from our start
            self._at(_T_CHAIN | i << 4, self.now)
        occ = self.plan.va_occ[self.plan.slot[i]]
        self.acc_varith += occ
        self.va_tb[i] = self.now
        self.va_state[i] = _VA_OCC
        self._at(_T_VA | i << 4, self.now + occ)

    def _va_fin(self, i: int) -> None:
        if self.timeline is not None:
            plan = self.plan
            self.timeline.add("vpu-arith", f"varith[{i}]",
                              self.va_tb[i], self.now, vl=plan.vl[i],
                              occupancy=plan.va_occ[plan.slot[i]])
        self._finish(i)

    # --------------------------------------------------------- vector memory

    def _vm_spawn(self, i: int) -> None:
        dep = self.plan.dep[i]
        tok = _T_VM | i << 4
        if self.ooo:
            # OoO memory queue: wait for operands *before* claiming the AGU
            if dep >= 0:
                if self.chaining:
                    self.vm_state[i] = _VM_CHAINED_PRE
                    self._wait_chain(dep, tok)
                else:
                    self.vm_state[i] = _VM_DEP_PRE
                    self._wait_done(dep, tok)
                return
            self._vm_agu_request(i, _VM_AGU)
        else:
            # strict in-order issue: hold the AGU through the operand wait
            self._vm_agu_request(i, _VM_AGU2)

    def _vm_agu_request(self, i: int, state: int) -> None:
        self.vm_state[i] = state
        tok = _T_VM | i << 4
        if not self.agu_busy:
            self.agu_busy = True
            self._at(tok, self.now)  # grant hop
        else:
            self.agu_q.append(tok)

    def _vm_step(self, i: int) -> None:
        st = self.vm_state[i]
        tok = _T_VM | i << 4
        if st == _VM_GAP:
            self._vm_issue(i, True)
        elif st == _VM_ALL:
            self._vm_tail(i)
        elif st == _VM_CHAINED_PRE:
            self.vm_state[i] = _VM_DEP_PRE
            self._at(tok, self.now + _LPD)
        elif st == _VM_DEP_PRE:
            self._vm_agu_request(i, _VM_AGU)
        elif st == _VM_AGU:
            self._vm_ready(i)
        elif st == _VM_AGU2:
            dep = self.plan.dep[i]
            if dep < 0:
                self._vm_ready(i)
            elif self.chaining:
                self.vm_state[i] = _VM_CHAINED_POST
                self._wait_chain(dep, tok)
            else:
                self.vm_state[i] = _VM_READY
                self._wait_done(dep, tok)
        elif st == _VM_CHAINED_POST:
            self.vm_state[i] = _VM_READY
            self._at(tok, self.now + _LPD)
        elif st == _VM_READY:
            self._vm_ready(i)
        elif st == _VM_FLOOR:
            target = self.done_time[self.plan.dep[i]] + _LPD
            if self.now < target:
                self.vm_state[i] = _VM_FIN
                self._at(tok, target)
            else:
                self._vm_fin(i)
        else:  # _VM_FIN
            self._vm_fin(i)

    def _vm_ready(self, i: int) -> None:
        self.vm_tb[i] = self.now
        self.vm_j[i] = 0
        self.vm_wbleft[i] = self.plan.vm_wb[self.plan.slot[i]]
        self.vm_live[i] = 0
        self._vm_issue(i, False)

    def _vm_issue(self, i: int, spawn_first: bool) -> None:
        # Hot path: issues every coalesced line of one vector-memory
        # record, with the slab allocation, MSHR request, NoC hop and
        # writeback spawn inlined (equivalent to
        # :meth:`_spawn_line` + :meth:`_spawn_wb` per line).
        plan = self.plan
        slot = plan.slot[i]
        steps = plan.vm_steps[slot]
        levels = plan.vm_levels[slot]
        banks = plan.vm_banks[slot]
        n_lines = plan.vm_n[slot]
        now = self.now
        wheel = self.wheel
        curq_app = self._curq.append
        ln_free = self.ln_free
        ln_bank = self.ln_bank
        ln_level = self.ln_level
        ln_vector = self.ln_vector
        ln_owner = self.ln_owner
        ln_first = self.ln_first
        ln_state = self.ln_state
        ln_stage = self.ln_stage
        ln_waiter = self.ln_waiter
        hops_tab = self.hops_tab
        lat_tab = self.lat_tab
        mshr_q = self.mshr_q
        mshr_cap = self.mshr_cap
        j = self.vm_j[i]
        live = self.vm_live[i]
        wbleft = self.vm_wbleft[i]
        pending_gap = not spawn_first
        while j < n_lines:
            if pending_gap:
                s = steps[j]
                if s > 0:
                    self.vm_j[i] = j
                    self.vm_live[i] = live
                    self.vm_wbleft[i] = wbleft
                    self.vm_state[i] = _VM_GAP
                    if s < _WHEEL:
                        at = now + s
                        sl = at & _WMASK
                        b = wheel[sl]
                        if not b:
                            self.occ |= 1 << sl
                        b.append(_T_VM | i << 4)
                    else:
                        self._at(_T_VM | i << 4, now + s)
                    return
            else:
                pending_gap = True
            # ---- spawn line j (inline _spawn_line, vector path) ----
            bank = banks[j]
            level = levels[j]
            if ln_free:
                lid = ln_free.pop()
                ln_bank[lid] = bank
                ln_level[lid] = level
                ln_vector[lid] = True
                ln_owner[lid] = i
                ln_first[lid] = j == 0 and self.chain_state[i] == 0
                ln_state[lid] = 0
                ln_waiter[lid] = None
            else:
                lid = len(ln_bank)
                ln_bank.append(bank)
                ln_level.append(level)
                ln_vector.append(True)
                ln_owner.append(i)
                ln_first.append(j == 0 and self.chain_state[i] == 0)
                ln_state.append(0)
                ln_stage.append(0)
                ln_waiter.append(None)
            live += 1
            tok = _T_LINE | lid << 4
            if level == _DRAM:
                ln_stage[lid] = _LS_MSHR
                if self.mshr_used < mshr_cap:
                    self.mshr_used += 1
                    curq_app(tok)  # grant hop
                else:
                    mshr_q.append(tok)
            else:
                self.noc_msgs += 1
                self.noc_hops += hops_tab[bank]
                lat = lat_tab[bank]
                self.noc_lat += lat
                ln_stage[lid] = _LS_ARRIVE
                if 0 < lat < _WHEEL:
                    at = now + lat
                    sl = at & _WMASK
                    b = wheel[sl]
                    if not b:
                        self.occ |= 1 << sl
                    b.append(tok)
                else:
                    self._at(tok, now + lat)
            if wbleft > 0:
                wbleft -= 1
                self.noc_msgs += 1
                self.noc_hops += hops_tab[bank]
                lat = lat_tab[bank]
                self.noc_lat += lat
                if 0 < lat < _WHEEL:
                    at = now + lat
                    sl = at & _WMASK
                    b = wheel[sl]
                    if not b:
                        self.occ |= 1 << sl
                    b.append(_T_WB)
                else:
                    self._at(_T_WB, now + lat)
            j += 1
        self.vm_live[i] = live
        self.vm_wbleft[i] = wbleft
        # all lines issued: free the AGU, wait for the responses
        if self.agu_q:
            curq_app(self.agu_q.popleft())
        else:
            self.agu_busy = False
        if n_lines == 0:
            self._vm_tail(i)  # no responses: continue inline
        elif live == 0:
            self.vm_state[i] = _VM_ALL
            curq_app(_T_VM | i << 4)  # all-of fires immediately
        else:
            self.vm_waiting[i] = True

    def _vm_tail(self, i: int) -> None:
        self.acc_vmem += self.now - self.vm_tb[i]
        dep = self.plan.dep[i]
        if dep >= 0 and self.chaining:
            self.vm_state[i] = _VM_FLOOR
            self._wait_done(dep, _T_VM | i << 4)
        else:
            self._vm_fin(i)

    def _vm_fin(self, i: int) -> None:
        plan = self.plan
        if self.timeline is not None:
            slot = plan.slot[i]
            self.timeline.add("vpu-mem", f"vmem[{i}]", self.vm_tb[i],
                              self.now, vl=plan.vl[i],
                              lines=plan.vm_n[slot],
                              dram_reads=plan.vm_dram[slot])
        self._finish(i)
        if self.slots_q:  # free the decoupled-queue slot
            self._at(self.slots_q.popleft(), self.now)
        else:
            self.slots_used -= 1


def _plan_line_spawns(plan: EventPlan) -> int:
    """Total line-request slab allocations a run of ``plan`` performs.

    Derived from the plan tables (one vector-memory record spawns its
    coalesced line count; one scalar block spawns its non-L1 ops), so the
    introspection layer never counts allocations on the hot path. Cached
    on the plan — it is shared across every re-timing of one trace.
    """
    cached = getattr(plan, "_line_spawns", None)
    if cached is not None:
        return cached
    kind = plan.kind
    slot = plan.slot
    total = 0
    for i in range(plan.n):
        k = kind[i]
        if k == LKIND_VMEM:
            total += plan.vm_n[slot[i]]
        elif k == LKIND_SCALAR:
            levels = plan.sc_levels[slot[i]]
            if levels:
                total += sum(1 for lv in levels if lv != _L1)
    plan._line_spawns = total
    return total


def _record_engine_stats(sim: _FastSim, plan: EventPlan) -> None:
    """Post-run introspection: everything not kept per-timestamp is
    derived from end-of-run state (see docs/observability.md glossary)."""
    from repro.obs.engine_stats import get_engine_stats

    es = get_engine_stats()
    es.count("event.runs")
    es.count("event.timestamps", sim.intro_timestamps)
    es.count("event.tokens", sim.intro_tokens)
    es.high("event.max_drain_depth", sim.intro_max_drain)
    es.high("event.max_wheel_occupancy", sim.intro_max_occupancy)
    es.count("event.overflow_spills", sim._oseq)
    es.high("event.slab_high_water", len(sim.ln_bank))
    spawns = _plan_line_spawns(plan)
    es.count("event.line_spawns", spawns)
    es.count("event.lines_recycled", spawns - len(sim.ln_bank))
    es.count("limiter.admits", sim.limiter.admitted)
    es.count("limiter.fast_path_admits", sim.limiter.fast_admits)


def simulate_events_fast(ct: ClassifiedTrace, *, timeline=None
                         ) -> CycleReport:
    """Run the array-backed discrete-event model over a classified trace.

    Drop-in replacement for :func:`repro.engine.event_sim.simulate_events`
    with bit-identical results; registered as ``engine="event"``.
    """
    # resolved lazily to keep the engine importable without the obs
    # package (and to avoid a package-init cycle)
    from repro.obs.engine_stats import introspection_enabled

    if timeline is not None:
        timeline.engine = "event"
    plan = event_plan(ct)
    intro = introspection_enabled()
    sim = _FastSim(ct, plan, timeline, intro=intro)
    sim._core_advance()  # synchronous start, like the reference's core()
    sim._run()
    if intro:
        _record_engine_stats(sim, plan)
    cycles = sim.now if sim.now >= sim.wb_tail else sim.wb_tail
    return CycleReport(
        cycles=float(cycles),
        engine="event",
        scalar_issue_cycles=float(sim.acc_issue),
        scalar_stall_cycles=float(sim.acc_stall),
        vpu_arith_cycles=float(sim.acc_varith),
        vpu_mem_cycles=float(sim.acc_vmem),
        bandwidth_bound_cycles=0.0,
        dram_reads=plan.total_dram_reads,
        dram_writes=plan.total_dram_writes,
        meta={
            "records": plan.n,
            "noc": {
                "messages": sim.noc_msgs,
                "total_hops": sim.noc_hops,
                "latency_cycles": float(sim.noc_lat),
            },
            "latency_ctl": sim.latency_ctl.stats,
            "limiter": sim.limiter.stats,
            "bank_wait_cycles": float(sim.bank_wait),
        },
    )
