"""Timing results: cycle counts with a component breakdown."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.units import LINE_BYTES, fmt_cycles


@dataclass
class CycleReport:
    """Outcome of timing one classified trace on one configuration.

    ``cycles`` is the headline number (what the paper reads from the cycle
    counter CSR). The breakdown attributes the critical path; components
    overlap on the real machine so they do not sum to ``cycles``.
    """

    cycles: float
    engine: str = ""
    # component views (not additive):
    scalar_issue_cycles: float = 0.0
    scalar_stall_cycles: float = 0.0
    vpu_arith_cycles: float = 0.0
    vpu_mem_cycles: float = 0.0
    bandwidth_bound_cycles: float = 0.0
    # traffic:
    dram_reads: int = 0
    dram_writes: int = 0
    meta: dict = field(default_factory=dict)
    #: filled by repro.obs.attribution when an attribution pass ran: a
    #: CycleAttribution whose buckets sum bit-exactly to ``cycles``.
    attribution: object | None = None

    @property
    def dram_transactions(self) -> int:
        return self.dram_reads + self.dram_writes

    @property
    def dram_bytes(self) -> int:
        return self.dram_transactions * LINE_BYTES

    @property
    def achieved_bytes_per_cycle(self) -> float:
        return self.dram_bytes / self.cycles if self.cycles > 0 else 0.0

    def summary(self) -> str:
        return (
            f"{fmt_cycles(self.cycles)} [{self.engine}] "
            f"(issue {fmt_cycles(self.scalar_issue_cycles)}, "
            f"stall {fmt_cycles(self.scalar_stall_cycles)}, "
            f"vmem {fmt_cycles(self.vpu_mem_cycles)}, "
            f"varith {fmt_cycles(self.vpu_arith_cycles)}, "
            f"bw-bound {fmt_cycles(self.bandwidth_bound_cycles)}; "
            f"DRAM {self.dram_transactions} txns, "
            f"{self.achieved_bytes_per_cycle:.2f} B/cyc)"
        )
