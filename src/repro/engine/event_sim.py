"""Discrete-event reference engine.

Models the FPGA-SDV as communicating processes on the DES kernel
(:mod:`repro.engine.des`):

* the **scalar core** walks the trace in order, issuing scalar accesses at
  its issue width with MSHR-bounded outstanding misses, dispatching vector
  instructions to the VPU, stalling on scalar-destination results, queue-full
  dispatch and barriers;
* the **arith pipe** executes vector arithmetic in order with the
  :mod:`vpu_model` occupancies, honoring RAW dependencies and chaining;
* the **vector memory unit** issues line requests at the AGU rate through
  the NoC to the per-bank L2 ports; misses stream through the Bandwidth
  Limiter window and the Latency Controller to DRAM.

The hit/miss outcome of every request comes from the classification pass
(the caches are deterministic state machines, so there is no point
re-simulating them here); what this engine adds over the fast engine is
*queueing*: real per-bank contention, real limiter windows, real MSHR and
decoupled-queue occupancy. The cross-validation tests assert the two agree.

This engine is O(events) in Python and is intended for validation and
detailed study of small/medium traces, not for full paper-scale sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.engine import core_model, vpu_model
from repro.engine.des import Environment, Event, Resource
from repro.engine.results import CycleReport
from repro.errors import EngineError
from repro.memory.bandwidth_limiter import BandwidthLimiter
from repro.memory.latency_controller import LatencyController
from repro.memory.classify import (
    KIND_BARRIER,
    KIND_SCALAR,
    KIND_VARITH,
    KIND_VMEM,
    AccessLevel,
    ClassifiedTrace,
    _coalesce_lines,
)
from repro.memory.noc import MeshNoc
from repro.trace.events import ScalarBlock, VectorInstr, VMemPattern, VOpClass
from repro.util.mathx import log2_int
from repro.util.units import LINE_BYTES

_OPCLASS = list(VOpClass)
_PATTERN = list(VMemPattern)
_LINE_SHIFT = log2_int(LINE_BYTES)


class _Machine:
    """All simulation state for one run."""

    def __init__(self, ct: ClassifiedTrace, *, timeline=None) -> None:
        self.ct = ct
        self.config = ct.config
        self.rows = ct.rows
        self.records = ct.trace.records
        self.env = Environment()
        self.timeline = timeline
        cfg = self.config

        self.limiter = BandwidthLimiter(cfg.mem.bw_num, cfg.mem.bw_den)
        self.latency_ctl = LatencyController(cfg.mem.extra_latency_cycles)
        self.noc = MeshNoc(cfg.noc)
        self.bank_wait_cycles = 0.0  # queueing at the L2 bank ports
        self.bank_ports = [Resource(self.env, 1) for _ in range(cfg.l2.banks)]
        self.arith_pipe = Resource(self.env, 1)
        self.agu = Resource(self.env, 1)
        self.mem_slots = Resource(self.env, cfg.vpu.mem_queue_depth)
        self.line_mshrs = Resource(self.env, cfg.vpu.line_mshrs)

        n = self.rows.shape[0]
        self.done_ev: list[Event] = [self.env.event() for _ in range(n)]
        self.chain_ev: list[Event] = [self.env.event() for _ in range(n)]
        self.done_time = np.full(n, -1.0)
        self.pending: set[int] = set()

        # breakdown accumulators
        self.acc_issue = 0.0
        self.acc_stall = 0.0
        self.acc_varith = 0.0
        self.acc_vmem = 0.0
        self.dram_reads = int(self.rows["dram_reads"].sum()
                              + self.rows["pf_dram_reads"].sum())
        self.dram_writes = int(self.rows["dram_writes"].sum())

    # ------------------------------------------------------------ memory path

    def line_request(self, bank: int, level: int, *, pre_delay: float = 0.0,
                     resp_ev: Event | None = None, vector: bool = False):
        """One 64-byte read request: NoC → bank port → (DRAM) → response.

        Vector-side DRAM requests occupy one of the memory unit's line
        MSHRs for their whole flight (the scalar core's MSHR bound is
        modeled in :meth:`scalar_block`).
        """
        env = self.env
        if pre_delay > 0:
            yield env.timeout(pre_delay)
        mshr_held = False
        if vector and level == AccessLevel.DRAM:
            grant = self.line_mshrs.request()
            yield grant
            mshr_held = True
        bank_node = bank % self.config.noc.nodes
        yield env.timeout(self.noc.record_message(self.noc.core_node,
                                                  bank_node))
        t_req = env.now
        grant = self.bank_ports[bank].request()
        yield grant
        self.bank_wait_cycles += env.now - t_req
        yield env.timeout(1.0)  # pipelined bank port occupancy
        self.bank_ports[bank].release()
        yield env.timeout(self.config.l2.access_cycles - 1.0)
        if level == AccessLevel.DRAM:
            admit = self.limiter.admit(env.now)
            if admit > env.now:
                yield env.timeout(admit - env.now)
            yield env.timeout(self.latency_ctl.delay(env.now) - env.now
                              + self.config.mem.dram_service_cycles)
        yield env.timeout(self.noc.record_message(bank_node,
                                                  self.noc.core_node))
        if mshr_held:
            self.line_mshrs.release()
        if resp_ev is not None and not resp_ev.triggered:
            resp_ev.succeed()

    def dram_writeback(self, bank: int):
        """Fire-and-forget write transaction (consumes limiter bandwidth)."""
        env = self.env
        yield env.timeout(self.noc.record_message(
            self.noc.core_node, bank % self.config.noc.nodes))
        admit = self.limiter.admit(env.now)
        if admit > env.now:
            yield env.timeout(admit - env.now)
        yield env.timeout(self.latency_ctl.delay(env.now) - env.now
                          + self.config.mem.dram_service_cycles)

    # -------------------------------------------------------------- dependency

    def wait_dep(self, dep: int):
        """Wait until a consumer of record ``dep`` may start."""
        if self.config.vpu.chaining:
            yield self.chain_ev[dep]
            yield self.env.timeout(vpu_model.LANE_PIPE_DEPTH)
        else:
            yield self.done_ev[dep]

    def enforce_floor(self, dep: int):
        """Consumer completion floor: producer done + pipe depth."""
        if not self.config.vpu.chaining:
            return
        yield self.done_ev[dep]
        target = self.done_time[dep] + vpu_model.LANE_PIPE_DEPTH
        if self.env.now < target:
            yield self.env.timeout(target - self.env.now)

    def finish(self, i: int) -> None:
        self.done_time[i] = self.env.now
        if not self.done_ev[i].triggered:
            self.done_ev[i].succeed()
        if not self.chain_ev[i].triggered:
            self.chain_ev[i].succeed()
        self.pending.discard(i)

    # ----------------------------------------------------------------- scalar

    def scalar_block(self, i: int, rec: ScalarBlock):
        env = self.env
        row = self.rows[i]
        levels = self.ct.levels[i]
        core = self.config.core
        n_mem = rec.n_mem_ops

        if n_mem == 0:
            issue = rec.n_alu_ops * core.alu_cpi / core.issue_width
            self.acc_issue += issue
            if issue > 0:
                yield env.timeout(issue)
            return

        t_start = env.now
        lines = rec.mem_addrs >> _LINE_SHIFT
        p = max(1, min(core.mshrs, rec.mlp_hint))
        gap = (rec.n_alu_ops * core.alu_cpi / n_mem + 1.0) / core.issue_width
        self.acc_issue += gap * n_mem

        outstanding: list[Event] = []
        wb_left = int(row["dram_writes"])
        pf_left = int(row["pf_dram_reads"])
        for j in range(n_mem):
            yield env.timeout(gap)
            level = int(levels[j])
            if level == AccessLevel.L1:
                continue
            if len(outstanding) >= p:
                # FIFO MSHRs: wait for the oldest outstanding miss
                yield outstanding.pop(0)
            bank = int(lines[j]) & (self.config.l2.banks - 1)
            resp = env.event()
            env.process(self.line_request(
                bank, level, pre_delay=core.l1_hit_cycles, resp_ev=resp))
            outstanding.append(resp)
            if wb_left > 0:
                # attribute the block's writebacks to its earliest misses
                env.process(self.dram_writeback(bank))
                wb_left -= 1
            if pf_left > 0:
                # prefetcher fill: fire-and-forget read on the same channel
                env.process(self.dram_writeback((bank + 1)
                                                % self.config.l2.banks))
                pf_left -= 1
        for ev in outstanding:
            yield ev
        while wb_left > 0:  # writebacks beyond the miss count (rare)
            env.process(self.dram_writeback(0))
            wb_left -= 1
        self.acc_stall += env.now - t_start - gap * n_mem

    # ----------------------------------------------------------------- vector

    def varith(self, i: int):
        env = self.env
        row = self.rows[i]
        opclass = _OPCLASS[row["opclass"]]
        grant = self.arith_pipe.request()
        yield grant
        dep = int(row["dep"])
        if dep >= 0:
            yield from self.wait_dep(dep)
        if not self.chain_ev[i].triggered:
            self.chain_ev[i].succeed()  # consumers may chain from our start
        occ = vpu_model.arith_occupancy(self.config, opclass, int(row["vl"]))
        self.acc_varith += occ
        t_busy = env.now
        yield env.timeout(occ)
        self.arith_pipe.release()
        # result becomes visible one pipeline latency after issue completes
        yield env.timeout(vpu_model.arith_latency(self.config))
        if dep >= 0:
            yield from self.enforce_floor(dep)
        if self.timeline is not None:
            self.timeline.add("vpu-arith", f"varith[{i}]", t_busy, env.now,
                              vl=int(row["vl"]), occupancy=occ)
        self.finish(i)

    def vmem(self, i: int, rec: VectorInstr):
        env = self.env
        row = self.rows[i]
        levels = self.ct.levels[i]
        pattern = _PATTERN[row["pattern"]]
        cost = vpu_model.vmem_cost(
            self.config,
            pattern=pattern,
            vl=int(row["vl"]),
            active=int(row["active"]),
            n_lines=int(row["n_line_reqs"]),
            dram_reads=int(row["dram_reads"]),
            dram_writes=int(row["dram_writes"]),
        )
        dep = int(row["dep"])
        if self.config.vpu.ooo_mem_issue:
            # OoO memory queue: wait for operands *before* claiming the AGU,
            # so younger independent loads stream past a stalled gather
            if dep >= 0:
                yield from self.wait_dep(dep)
            grant = self.agu.request()
            yield grant
        else:
            # strict in-order issue: hold the AGU through the operand wait
            grant = self.agu.request()
            yield grant
            if dep >= 0:
                yield from self.wait_dep(dep)

        lines = _coalesce_lines(rec.addrs, rec.pattern,
                                self.config.vpu.coalesce_gathers)
        n_lines = lines.shape[0]
        if n_lines != levels.shape[0]:
            raise EngineError("classified levels misaligned with line requests")
        issue_gap = (cost.addr_cycles / n_lines) if n_lines else 0.0
        t_busy_start = env.now

        responses: list[Event] = []
        first_resp = self.chain_ev[i]
        wb_left = int(row["dram_writes"])
        for j in range(n_lines):
            if issue_gap > 0:
                yield env.timeout(issue_gap)
            bank = int(lines[j]) & (self.config.l2.banks - 1)
            resp = env.event()
            env.process(self.line_request(bank, int(levels[j]), resp_ev=resp,
                                          vector=True))
            responses.append(resp)
            if j == 0 and not first_resp.triggered:
                # chain-ready fires with the first response
                def _fire_first(_e, fr=first_resp):
                    if not fr.triggered:
                        fr.succeed()
                resp.callbacks.append(_fire_first)
            if wb_left > 0:
                env.process(self.dram_writeback(bank))
                wb_left -= 1
        self.agu.release()
        if responses:
            yield env.all_of(responses)
        self.acc_vmem += env.now - t_busy_start
        if dep >= 0:
            yield from self.enforce_floor(dep)
        if self.timeline is not None:
            self.timeline.add("vpu-mem", f"vmem[{i}]", t_busy_start, env.now,
                              vl=int(row["vl"]), lines=n_lines,
                              dram_reads=int(row["dram_reads"]))
        self.finish(i)
        self.mem_slots.release()

    # ------------------------------------------------------------------- core

    def core(self):
        env = self.env
        rows = self.rows
        for i, rec in enumerate(self.records):
            kind = int(rows[i]["kind"])
            if kind == KIND_SCALAR:
                t0 = env.now
                yield from self.scalar_block(i, rec)
                if self.timeline is not None:
                    self.timeline.add("scalar-core", f"scalar[{i}]",
                                      t0, env.now)
                self.finish(i)
                continue
            if kind == KIND_BARRIER:
                waits = [self.done_ev[j] for j in sorted(self.pending)]
                if waits:
                    yield env.all_of(waits)
                if self.timeline is not None:
                    self.timeline.instant("scalar-core", f"barrier[{i}]",
                                          env.now)
                self.finish(i)
                continue
            opclass = _OPCLASS[rows[i]["opclass"]]
            if kind == KIND_VARITH and opclass is VOpClass.CSR:
                yield env.timeout(core_model.VSETVL_CYCLES)
                self.finish(i)
                continue
            yield env.timeout(core_model.VECTOR_DISPATCH_CYCLES)
            if kind == KIND_VARITH:
                self.pending.add(i)
                env.process(self.varith(i))
            elif kind == KIND_VMEM:
                slot = self.mem_slots.request()
                yield slot  # core stalls while the decoupled queue is full
                self.pending.add(i)
                env.process(self.vmem(i, rec))
            else:
                raise EngineError(f"unknown record kind {kind}")
            if rows[i]["scalar_dest"]:
                yield self.done_ev[i]
                yield env.timeout(core_model.SCALAR_RESULT_TRANSFER_CYCLES)


def simulate_events(ct: ClassifiedTrace, *, timeline=None) -> CycleReport:
    """Run the discrete-event model over a classified trace.

    ``timeline`` (a :class:`repro.obs.timeline.TimelineRecorder`) records
    the actual simulated schedule per machine unit. The report's ``meta``
    carries the memory-path component stats only this engine observes:
    NoC message traffic, Latency Controller injections, Bandwidth Limiter
    throttle delay, and L2 bank-port queueing.
    """
    if timeline is not None:
        timeline.engine = "event"
    m = _Machine(ct, timeline=timeline)
    m.env.process(m.core())
    m.env.run()
    return CycleReport(
        cycles=m.env.now,
        engine="event",
        scalar_issue_cycles=m.acc_issue,
        scalar_stall_cycles=m.acc_stall,
        vpu_arith_cycles=m.acc_varith,
        vpu_mem_cycles=m.acc_vmem,
        bandwidth_bound_cycles=0.0,
        dram_reads=m.dram_reads,
        dram_writes=m.dram_writes,
        meta={
            "records": int(ct.rows.shape[0]),
            "noc": m.noc.stats,
            "latency_ctl": m.latency_ctl.stats,
            "limiter": m.limiter.stats,
            "bank_wait_cycles": m.bank_wait_cycles,
        },
    )
