"""Discrete-event reference engine (coroutine backend, ``event-ref``).

Models the FPGA-SDV as communicating processes on the DES kernel
(:mod:`repro.engine.des`):

* the **scalar core** walks the trace in order, issuing scalar accesses at
  its issue width with MSHR-bounded outstanding misses, dispatching vector
  instructions to the VPU, stalling on scalar-destination results, queue-full
  dispatch and barriers;
* the **arith pipe** executes vector arithmetic in order with the
  :mod:`vpu_model` occupancies, honoring RAW dependencies and chaining;
* the **vector memory unit** issues line requests at the AGU rate through
  the NoC to the per-bank L2 ports; misses stream through the Bandwidth
  Limiter window and the Latency Controller to DRAM.

The hit/miss outcome of every request comes from the classification pass
(the caches are deterministic state machines, so there is no point
re-simulating them here); what this engine adds over the fast engine is
*queueing*: real per-bank contention, real limiter windows, real MSHR and
decoupled-queue occupancy.

All per-record cost inputs come from the shared
:class:`repro.engine.event_common.EventPlan`, which also pre-quantizes the
fractional issue gaps onto the kernel's integer-cycle clock. The
array-backed engine (:mod:`repro.engine.event_fast`, registered as
``engine="event"``) replays the **same schedule** without coroutines and
must agree with this one bit for bit; this backend stays registered as
``engine="event-ref"`` as the executable specification and for
differential debugging. It is O(events) in Python generators and is the
slowest engine — use it to validate, not to sweep.
"""

from __future__ import annotations

from repro.engine import core_model, vpu_model
from repro.engine.des import Environment, Event, Resource
from repro.engine.event_common import EventPlan, event_plan
from repro.engine.lower import (
    LKIND_BARRIER,
    LKIND_CSR,
    LKIND_SCALAR,
    LKIND_VARITH,
    LKIND_VMEM,
)
from repro.engine.results import CycleReport
from repro.errors import EngineError
from repro.memory.bandwidth_limiter import BandwidthLimiter
from repro.memory.classify import AccessLevel, ClassifiedTrace
from repro.memory.latency_controller import LatencyController
from repro.memory.noc import MeshNoc

# integer-cycle core costs (see core_model for the rationale/values)
_DISPATCH = int(core_model.VECTOR_DISPATCH_CYCLES)
_VSETVL = int(core_model.VSETVL_CYCLES)
_TRANSFER = int(core_model.SCALAR_RESULT_TRANSFER_CYCLES)
_DRAM = int(AccessLevel.DRAM)
_L1 = int(AccessLevel.L1)


class _Machine:
    """All simulation state for one run."""

    def __init__(self, ct: ClassifiedTrace, plan: EventPlan, *,
                 timeline=None) -> None:
        self.plan = plan
        self.config = ct.config
        self.env = Environment()
        self.timeline = timeline
        cfg = self.config

        self.limiter = BandwidthLimiter(cfg.mem.bw_num, cfg.mem.bw_den)
        self.latency_ctl = LatencyController(cfg.mem.extra_latency_cycles)
        self.noc = MeshNoc(cfg.noc)
        self.bank_wait_cycles = 0.0  # queueing at the L2 bank ports
        # analytic unit-rate bank port servers: the k-th arrival at a bank
        # is granted at max(arrival, previous grant + 1) — exactly a FIFO
        # Resource(1) held for one cycle, without two event hops per line
        self.bank_free = [0] * cfg.l2.banks
        self.access = int(cfg.l2.access_cycles)
        self.dram_service = int(cfg.mem.dram_service_cycles)
        self.l1_hit = int(cfg.core.l1_hit_cycles)
        self.arith_lat = int(vpu_model.arith_latency(cfg))
        self.n_banks = cfg.l2.banks
        self.nodes = cfg.noc.nodes

        self.arith_pipe = Resource(self.env, 1)
        self.agu = Resource(self.env, 1)
        self.mem_slots = Resource(self.env, cfg.vpu.mem_queue_depth)
        self.line_mshrs = Resource(self.env, cfg.vpu.line_mshrs)

        n = plan.n
        self.done_ev: list[Event] = [self.env.event() for _ in range(n)]
        self.chain_ev: list[Event] = [self.env.event() for _ in range(n)]
        self.done_time = [-1] * n
        self.pending: set[int] = set()

        # breakdown accumulators (only ever add integers: order-exact)
        self.acc_issue = 0
        self.acc_stall = 0
        self.acc_varith = 0
        self.acc_vmem = 0

    # ------------------------------------------------------------ memory path

    def line_request(self, bank: int, level: int, *, pre_delay: int = 0,
                     resp_ev: Event | None = None, vector: bool = False):
        """One 64-byte read request: NoC → bank port → (DRAM) → response.

        Vector-side DRAM requests occupy one of the memory unit's line
        MSHRs for their whole flight (the scalar core's MSHR bound is
        modeled in :meth:`scalar_block`).
        """
        env = self.env
        if pre_delay > 0:
            yield env.timeout(pre_delay)
        mshr_held = False
        if vector and level == _DRAM:
            yield self.line_mshrs.request()
            mshr_held = True
        bank_node = bank % self.nodes
        yield env.timeout(self.noc.record_message(self.noc.core_node,
                                                  bank_node))
        now = env.now
        grant = self.bank_free[bank]
        if grant < now:
            grant = now
        self.bank_free[bank] = grant + 1
        self.bank_wait_cycles += grant - now
        wait_access = grant - now + self.access
        if level == _DRAM:
            yield env.timeout(wait_access)
            now = env.now
            admit = int(self.limiter.admit(now))
            extra = int(self.latency_ctl.delay(admit)) - admit
            back = self.noc.record_message(bank_node, self.noc.core_node)
            yield env.timeout(admit - now + extra + self.dram_service + back)
        else:
            back = self.noc.record_message(bank_node, self.noc.core_node)
            yield env.timeout(wait_access + back)
        if mshr_held:
            self.line_mshrs.release()
        if resp_ev is not None and not resp_ev.triggered:
            resp_ev.succeed()

    def dram_writeback(self, bank: int):
        """Fire-and-forget write transaction (consumes limiter bandwidth)."""
        env = self.env
        yield env.timeout(self.noc.record_message(
            self.noc.core_node, bank % self.nodes))
        now = env.now
        admit = int(self.limiter.admit(now))
        extra = int(self.latency_ctl.delay(admit)) - admit
        yield env.timeout(admit - now + extra + self.dram_service)

    # -------------------------------------------------------------- dependency

    def wait_dep(self, dep: int):
        """Wait until a consumer of record ``dep`` may start."""
        if self.config.vpu.chaining:
            yield self.chain_ev[dep]
            yield self.env.timeout(vpu_model.LANE_PIPE_DEPTH)
        else:
            yield self.done_ev[dep]

    def enforce_floor(self, dep: int):
        """Consumer completion floor: producer done + pipe depth."""
        if not self.config.vpu.chaining:
            return
        yield self.done_ev[dep]
        target = self.done_time[dep] + vpu_model.LANE_PIPE_DEPTH
        if self.env.now < target:
            yield self.env.timeout(target - self.env.now)

    def finish(self, i: int) -> None:
        self.done_time[i] = self.env.now
        if not self.done_ev[i].triggered:
            self.done_ev[i].succeed()
        if not self.chain_ev[i].triggered:
            self.chain_ev[i].succeed()
        self.pending.discard(i)

    # ----------------------------------------------------------------- scalar

    def scalar_block(self, i: int, slot: int):
        env = self.env
        plan = self.plan
        n_mem = plan.sc_n_mem[slot]

        if n_mem == 0:
            issue = plan.sc_issue[slot]
            self.acc_issue += issue
            if issue > 0:
                yield env.timeout(issue)
            return

        t_start = env.now
        steps = plan.sc_steps[slot]
        levels = plan.sc_levels[slot]
        banks = plan.sc_banks[slot]
        p = plan.sc_p[slot]
        gap_total = plan.sc_gap_total[slot]
        self.acc_issue += gap_total

        outstanding: list[Event] = []
        wb_left = plan.sc_wb[slot]
        pf_left = plan.sc_pf[slot]
        for j in range(n_mem):
            if steps[j] > 0:
                yield env.timeout(steps[j])
            level = levels[j]
            if level == _L1:
                continue
            if len(outstanding) >= p:
                # FIFO MSHRs: wait for the oldest outstanding miss
                yield outstanding.pop(0)
            bank = banks[j]
            resp = env.event()
            env.process(self.line_request(
                bank, level, pre_delay=self.l1_hit, resp_ev=resp))
            outstanding.append(resp)
            if wb_left > 0:
                # attribute the block's writebacks to its earliest misses
                env.process(self.dram_writeback(bank))
                wb_left -= 1
            if pf_left > 0:
                # prefetcher fill: fire-and-forget read on the same channel
                env.process(self.dram_writeback((bank + 1) % self.n_banks))
                pf_left -= 1
        for ev in outstanding:
            yield ev
        while wb_left > 0:  # writebacks beyond the miss count (rare)
            env.process(self.dram_writeback(0))
            wb_left -= 1
        self.acc_stall += env.now - t_start - gap_total

    # ----------------------------------------------------------------- vector

    def varith(self, i: int):
        env = self.env
        plan = self.plan
        yield self.arith_pipe.request()
        dep = plan.dep[i]
        if dep >= 0:
            yield from self.wait_dep(dep)
        if not self.chain_ev[i].triggered:
            self.chain_ev[i].succeed()  # consumers may chain from our start
        occ = plan.va_occ[plan.slot[i]]
        self.acc_varith += occ
        t_busy = env.now
        yield env.timeout(occ)
        self.arith_pipe.release()
        # result becomes visible one pipeline latency after issue completes
        yield env.timeout(self.arith_lat)
        if dep >= 0:
            yield from self.enforce_floor(dep)
        if self.timeline is not None:
            self.timeline.add("vpu-arith", f"varith[{i}]", t_busy, env.now,
                              vl=plan.vl[i], occupancy=occ)
        self.finish(i)

    def vmem(self, i: int):
        env = self.env
        plan = self.plan
        dep = plan.dep[i]
        if self.config.vpu.ooo_mem_issue:
            # OoO memory queue: wait for operands *before* claiming the AGU,
            # so younger independent loads stream past a stalled gather
            if dep >= 0:
                yield from self.wait_dep(dep)
            yield self.agu.request()
        else:
            # strict in-order issue: hold the AGU through the operand wait
            yield self.agu.request()
            if dep >= 0:
                yield from self.wait_dep(dep)

        slot = plan.slot[i]
        n_lines = plan.vm_n[slot]
        steps = plan.vm_steps[slot]
        levels = plan.vm_levels[slot]
        banks = plan.vm_banks[slot]
        t_busy_start = env.now

        responses: list[Event] = []
        first_resp = self.chain_ev[i]
        wb_left = plan.vm_wb[slot]
        for j in range(n_lines):
            if steps[j] > 0:
                yield env.timeout(steps[j])
            bank = banks[j]
            resp = env.event()
            env.process(self.line_request(bank, levels[j], resp_ev=resp,
                                          vector=True))
            responses.append(resp)
            if j == 0 and not first_resp.triggered:
                # chain-ready fires with the first response
                def _fire_first(_e, fr=first_resp):
                    if not fr.triggered:
                        fr.succeed()
                resp.callbacks.append(_fire_first)
            if wb_left > 0:
                env.process(self.dram_writeback(bank))
                wb_left -= 1
        self.agu.release()
        if responses:
            yield env.all_of(responses)
        self.acc_vmem += env.now - t_busy_start
        if dep >= 0:
            yield from self.enforce_floor(dep)
        if self.timeline is not None:
            self.timeline.add("vpu-mem", f"vmem[{i}]", t_busy_start, env.now,
                              vl=plan.vl[i], lines=n_lines,
                              dram_reads=plan.vm_dram[slot])
        self.finish(i)
        self.mem_slots.release()

    # ------------------------------------------------------------------- core

    def core(self):
        env = self.env
        plan = self.plan
        for i in range(plan.n):
            kind = plan.kind[i]
            if kind == LKIND_SCALAR:
                t0 = env.now
                yield from self.scalar_block(i, plan.slot[i])
                if self.timeline is not None:
                    self.timeline.add("scalar-core", f"scalar[{i}]",
                                      t0, env.now)
                self.finish(i)
                continue
            if kind == LKIND_BARRIER:
                waits = [self.done_ev[j] for j in sorted(self.pending)]
                if waits:
                    yield env.all_of(waits)
                if self.timeline is not None:
                    self.timeline.instant("scalar-core", f"barrier[{i}]",
                                          env.now)
                self.finish(i)
                continue
            if kind == LKIND_CSR:
                yield env.timeout(_VSETVL)
                self.finish(i)
                continue
            yield env.timeout(_DISPATCH)
            if kind == LKIND_VARITH:
                self.pending.add(i)
                env.process(self.varith(i))
            elif kind == LKIND_VMEM:
                slot = self.mem_slots.request()
                yield slot  # core stalls while the decoupled queue is full
                self.pending.add(i)
                env.process(self.vmem(i))
            else:
                raise EngineError(f"unknown record kind {kind}")
            if plan.scalar_dest[i]:
                yield self.done_ev[i]
                yield env.timeout(_TRANSFER)


def simulate_events(ct: ClassifiedTrace, *, timeline=None) -> CycleReport:
    """Run the coroutine discrete-event model over a classified trace.

    ``timeline`` (a :class:`repro.obs.timeline.TimelineRecorder`) records
    the actual simulated schedule per machine unit. The report's ``meta``
    carries the memory-path component stats only the event engines observe:
    NoC message traffic, Latency Controller injections, Bandwidth Limiter
    throttle delay, and L2 bank-port queueing.
    """
    if timeline is not None:
        timeline.engine = "event-ref"
    plan = event_plan(ct)
    m = _Machine(ct, plan, timeline=timeline)
    m.env.process(m.core())
    m.env.run()
    return CycleReport(
        cycles=float(m.env.now),
        engine="event-ref",
        scalar_issue_cycles=float(m.acc_issue),
        scalar_stall_cycles=float(m.acc_stall),
        vpu_arith_cycles=float(m.acc_varith),
        vpu_mem_cycles=float(m.acc_vmem),
        bandwidth_bound_cycles=0.0,
        dram_reads=plan.total_dram_reads,
        dram_writes=plan.total_dram_writes,
        meta={
            "records": plan.n,
            "noc": m.noc.stats,
            "latency_ctl": m.latency_ctl.stats,
            "limiter": m.limiter.stats,
            "bank_wait_cycles": m.bank_wait_cycles,
        },
    )
