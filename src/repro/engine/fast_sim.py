"""Vectorized/per-record analytical timing engine.

Walks the classified trace once, maintaining three machine frontiers:

* ``t_scalar`` — the scalar core, which runs ahead of the VPU (decoupling)
  and only waits at barriers and on scalar-destination vector instructions
  (vpopc/vfirst/reductions/vsetvl);
* the arithmetic pipe (in-order, occupancy per :mod:`vpu_model`);
* the vector memory unit — an in-order AGU plus a decoupled queue of up to
  ``mem_queue_depth`` in-flight memory instructions whose latencies overlap.

Read-after-write dependencies come from the trace's ``dep`` field. With
chaining enabled a consumer may start when the producer's first elements
arrive (``start + first_latency + pipe``) but cannot complete before the
producer completes; with chaining disabled it waits for full completion.

Bandwidth appears twice, matching the Bandwidth Limiter hardware: in each
memory instruction's streaming time, and as a global floor — the run cannot
finish before all DRAM transactions have streamed through the limiter
window.
"""

from __future__ import annotations

import numpy as np

from repro.engine import core_model, vpu_model
from repro.engine.results import CycleReport
from repro.errors import EngineError
from repro.memory.classify import (
    KIND_BARRIER,
    KIND_SCALAR,
    KIND_VARITH,
    KIND_VMEM,
    ClassifiedTrace,
)
from repro.trace.events import VMemPattern, VOpClass

_OPCLASS = list(VOpClass)
_PATTERN = list(VMemPattern)


def simulate_fast(ct: ClassifiedTrace, *, timeline=None) -> CycleReport:
    """Time a classified trace; returns a :class:`CycleReport`.

    ``timeline`` (a :class:`repro.obs.timeline.TimelineRecorder`) records
    each record's analytical busy interval on its machine-unit track; the
    default ``None`` keeps the hot loop free of bookkeeping.
    """
    config = ct.config
    rows = ct.rows
    n = rows.shape[0]
    if n == 0:
        return CycleReport(cycles=0.0, engine="fast")
    if timeline is not None:
        timeline.engine = "fast"

    vpu = config.vpu
    mem = config.mem
    chaining = vpu.chaining
    q_depth = vpu.mem_queue_depth

    # frontiers
    t_scalar = 0.0
    t_arith = 0.0        # arithmetic pipe availability (throughput)
    t_arith_done = 0.0   # latest arithmetic completion (latency)
    t_agu = 0.0          # memory-unit issue availability
    t_mshr = 0.0         # DRAM line-return frontier (line-MSHR throughput)
    mem_completions: list[float] = []  # completion times of mem instrs, in order
    t_vmem_done = 0.0    # latest memory completion (instrs finish out of order)

    # per-record times for dependency lookups
    start = np.zeros(n, dtype=np.float64)
    completion = np.zeros(n, dtype=np.float64)
    first_lat = np.zeros(n, dtype=np.float64)

    # breakdown accumulators
    acc_issue = 0.0
    acc_stall = 0.0
    acc_varith = 0.0
    acc_vmem = 0.0
    dram_reads = 0
    dram_writes = 0

    kinds = rows["kind"]
    for i in range(n):
        kind = kinds[i]
        row = rows[i]

        if kind == KIND_SCALAR:
            bt = core_model.scalar_block_time(
                config,
                n_alu=int(row["n_alu"]),
                n_mem=int(row["n_mem"]),
                l2_hits=int(row["l2_hits"]),
                dram_reads=int(row["dram_reads"]),
                dram_writes=int(row["dram_writes"]),
                mlp_hint=int(row["mlp_hint"]),
                pf_dram_reads=int(row["pf_dram_reads"]),
            )
            t_scalar += bt.total
            acc_issue += bt.issue
            acc_stall += bt.stall
            dram_reads += int(row["dram_reads"]) + int(row["pf_dram_reads"])
            dram_writes += int(row["dram_writes"])
            start[i] = t_scalar - bt.total
            completion[i] = t_scalar
            if timeline is not None:
                timeline.add("scalar-core", f"scalar[{i}]",
                             start[i], t_scalar,
                             issue=bt.issue, stall=bt.stall)
            continue

        if kind == KIND_BARRIER:
            t_sync = max(t_scalar, t_arith, t_arith_done, t_vmem_done)
            t_scalar = t_arith = t_arith_done = t_agu = t_vmem_done = t_sync
            t_mshr = min(t_mshr, t_sync)
            start[i] = completion[i] = t_sync
            if timeline is not None:
                timeline.instant("scalar-core", f"barrier[{i}]", t_sync)
            continue

        opclass = _OPCLASS[row["opclass"]]
        dep = int(row["dep"])

        if kind == KIND_VARITH:
            if opclass is VOpClass.CSR:
                # vsetvl executes on the scalar side and returns vl
                t_scalar += core_model.VSETVL_CYCLES
                start[i] = completion[i] = t_scalar
                continue

            occ = vpu_model.arith_occupancy(config, opclass, int(row["vl"]))
            pipe_lat = vpu_model.arith_latency(config)
            dispatch = t_scalar + core_model.VECTOR_DISPATCH_CYCLES
            t_scalar = dispatch

            ready = dispatch
            floor = 0.0
            if dep >= 0:
                if chaining:
                    ready = max(ready, start[dep] + first_lat[dep]
                                + vpu_model.LANE_PIPE_DEPTH)
                    floor = completion[dep] + vpu_model.LANE_PIPE_DEPTH
                else:
                    ready = max(ready, completion[dep])
            s = max(ready, t_arith)
            # pipe throughput advances by occupancy; the result is visible
            # one pipeline latency later (dependency path only)
            c = max(s + occ + pipe_lat, floor)
            t_arith = s + occ
            t_arith_done = max(t_arith_done, c)
            start[i] = s
            completion[i] = c
            acc_varith += occ
            if timeline is not None:
                timeline.add("vpu-arith", f"varith[{i}]", s, c,
                             vl=int(row["vl"]), occupancy=occ)
            if row["scalar_dest"]:
                t_scalar = max(
                    t_scalar,
                    c + core_model.SCALAR_RESULT_TRANSFER_CYCLES,
                )
            continue

        if kind == KIND_VMEM:
            pattern = _PATTERN[row["pattern"]]
            cost = vpu_model.vmem_cost(
                config,
                pattern=pattern,
                vl=int(row["vl"]),
                active=int(row["active"]),
                n_lines=int(row["n_line_reqs"]),
                dram_reads=int(row["dram_reads"]),
                dram_writes=int(row["dram_writes"]),
            )
            dram_reads += int(row["dram_reads"])
            dram_writes += int(row["dram_writes"])

            dispatch = t_scalar + core_model.VECTOR_DISPATCH_CYCLES
            t_scalar = dispatch

            ready = dispatch
            floor = 0.0
            if dep >= 0:
                if chaining:
                    ready = max(ready, start[dep] + first_lat[dep]
                                + vpu_model.LANE_PIPE_DEPTH)
                    floor = completion[dep] + vpu_model.LANE_PIPE_DEPTH
                else:
                    ready = max(ready, completion[dep])

            # decoupled queue: a slot frees when the (i - q_depth)-th
            # previous memory instruction completes
            slot_free = (mem_completions[-q_depth]
                         if len(mem_completions) >= q_depth else 0.0)

            if vpu.ooo_mem_issue:
                # the AGU reserves its slot in order, but an instruction
                # stalled on a register dependency does not hold it: younger
                # independent loads stream past (OoO memory queue)
                agu_slot = max(t_agu, dispatch, slot_free)
                t_agu = agu_slot + cost.addr_cycles
                s = max(agu_slot, ready)
            else:
                # strict in-order issue: a dep-blocked gather stalls the pipe
                s = max(ready, t_agu, slot_free)
                t_agu = s + cost.addr_cycles
            busy = max(cost.addr_cycles, cost.service_cycles)
            c = max(s + cost.first_latency + busy, floor)
            d = int(row["dram_reads"])
            if d > 0:
                # the line-MSHR pool sustains at most line_mshrs/dram_latency
                # lines per cycle; the instruction's last line cannot return
                # before the pool has cycled through its share
                t_mshr = (max(t_mshr, s + config.dram_latency)
                          + d * config.dram_latency / vpu.line_mshrs)
                c = max(c, t_mshr)
            mem_completions.append(c)
            t_vmem_done = max(t_vmem_done, c)
            start[i] = s
            completion[i] = c
            first_lat[i] = cost.first_latency
            acc_vmem += busy
            if timeline is not None:
                timeline.add("vpu-mem", f"vmem[{i}]", s, c,
                             vl=int(row["vl"]), lines=int(row["n_line_reqs"]),
                             dram_reads=d)
            continue

        raise EngineError(f"unknown record kind {kind}")

    t_end = max(t_scalar, t_arith, t_arith_done, t_vmem_done)

    # global Bandwidth Limiter floor
    total_dram = dram_reads + dram_writes
    if total_dram > 0:
        bw_floor = ((total_dram - 1) // mem.bw_num) * mem.bw_den + 1.0
        bw_floor += config.dram_latency  # the last transaction's latency
    else:
        bw_floor = 0.0
    cycles = max(t_end, bw_floor)

    return CycleReport(
        cycles=cycles,
        engine="fast",
        scalar_issue_cycles=acc_issue,
        scalar_stall_cycles=acc_stall,
        vpu_arith_cycles=acc_varith,
        vpu_mem_cycles=acc_vmem,
        bandwidth_bound_cycles=bw_floor,
        dram_reads=dram_reads,
        dram_writes=dram_writes,
        meta={"records": int(n)},
    )
