"""Engine introspection: internal counters from the timing engines.

PR 5 made the hot paths opaque: the calendar-queue event engine, the
batch walk and the caching layers (event plan, classification, lowering,
on-disk traces) all run flat out with no way to see wheel occupancy, slab
recycling, drain depths or hit rates. This module is the collection
point: engines and caches report here, ``repro-sdv profile
--engine-stats`` and the HTML dashboard render it.

Introspection is **opt-in** (:func:`set_introspection`) and designed so
the *disabled* cost is unmeasurable: hot loops hoist one local boolean
per run and check it once per active timestamp — never per token — and
everything else is derived post-run from end-of-run state (slab lengths,
overflow sequence numbers, plan tables). ``benchmarks/
bench_obs_overhead.py`` pins the bars: <=5% with counters on, <=1% with
them off.

Like :mod:`repro.obs.metrics`, snapshots are plain mergeable dicts —
worker processes ship theirs back to the sweep parent. The counter
glossary lives in ``docs/observability.md``.
"""

from __future__ import annotations

#: module-level fast flag: engines read this through
#: :func:`introspection_enabled` once per run (never per event).
_ENABLED = False


class EngineStats:
    """Additive counters plus high-water marks, mergeable across processes.

    ``count`` accumulates (events, cache hits, spills); ``high`` keeps the
    maximum ever seen (drain depth, wheel occupancy, slab size). Both are
    plain ``name -> number`` dicts so snapshots pickle and JSON-serialize.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.highs: dict[str, float] = {}

    def count(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def high(self, name: str, value: float) -> None:
        if value > self.highs.get(name, 0):
            self.highs[name] = value

    def snapshot(self) -> dict:
        """Plain-data view: picklable, JSON-serializable, mergeable."""
        return {"counters": dict(self.counters), "highs": dict(self.highs)}

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (e.g. from a worker process) into this
        collector: counters add, high-water marks take the maximum."""
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, value in snapshot.get("highs", {}).items():
            self.high(name, value)

    def clear(self) -> None:
        self.counters.clear()
        self.highs.clear()

    # -- derived views --------------------------------------------------------

    def _rate(self, hits: str, misses: str) -> float | None:
        h = self.counters.get(hits, 0)
        m = self.counters.get(misses, 0)
        return h / (h + m) if h + m else None

    def ratios(self) -> dict[str, float]:
        """Derived hit/efficiency rates (only the ones with data)."""
        out: dict[str, float] = {}
        pairs = {
            "plan_cache.hit_rate": ("plan_cache.hits", "plan_cache.misses"),
            "classify_cache.hit_rate": ("classify_cache.hits",
                                        "classify_cache.misses"),
            "lower_cache.hit_rate": ("lower_cache.hits",
                                     "lower_cache.misses"),
            "trace_cache.hit_rate": ("trace_cache.hits",
                                     "trace_cache.misses"),
            "classify.sidecar_hit_rate": ("classify.sidecar_hits",
                                          "classify.sidecar_misses"),
            "classify.plane_attach_rate": ("classify.plane_attach_hits",
                                           "classify.plane_attach_misses"),
        }
        for name, (h, m) in pairs.items():
            r = self._rate(h, m)
            if r is not None:
                out[name] = r
        admits = self.counters.get("limiter.admits", 0)
        if admits:
            out["limiter.fast_path_rate"] = (
                self.counters.get("limiter.fast_path_admits", 0) / admits)
        spawns = self.counters.get("event.line_spawns", 0)
        if spawns:
            out["event.slab_recycle_rate"] = (
                self.counters.get("event.lines_recycled", 0) / spawns)
        ts = self.counters.get("event.timestamps", 0)
        if ts:
            out["event.tokens_per_timestamp"] = (
                self.counters.get("event.tokens", 0) / ts)
        runs = (self.counters.get("classify.stack_runs", 0)
                + self.counters.get("classify.walk_runs", 0))
        if runs:
            out["classify.stack_share"] = (
                self.counters.get("classify.stack_runs", 0) / runs)
        return out

    def render(self) -> str:
        """Human-readable counter table (``repro-sdv profile``)."""
        lines = ["engine introspection"]
        if not (self.counters or self.highs):
            lines.append("  (no counters recorded — enable introspection "
                         "and run an engine)")
            return "\n".join(lines)
        for name in sorted(self.counters):
            lines.append(f"  {name:<32s} {self.counters[name]:>14,.0f}")
        for name in sorted(self.highs):
            lines.append(f"  {name + ' (max)':<32s} "
                         f"{self.highs[name]:>14,.0f}")
        ratios = self.ratios()
        for name in sorted(ratios):
            lines.append(f"  {name:<32s} {ratios[name]:>14.3f}")
        return "\n".join(lines)


def snapshot_delta(before: dict, after: dict) -> dict:
    """The stats recorded *between* two snapshots of one collector.

    Worker processes are persistent (the sweep pool survives across
    figures), so a task must ship only its own contribution: counters
    subtract, high-water marks ship as-is (merging them is a max, which
    is idempotent).
    """
    counters: dict[str, float] = {}
    base = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        d = value - base.get(name, 0)
        if d:
            counters[name] = d
    return {"counters": counters, "highs": dict(after.get("highs", {}))}


#: process-wide collector (harness + engines record here; workers build
#: their own implicitly — it is per-process module state — and the sweep
#: parent merges their snapshots).
_STATS = EngineStats()


def get_engine_stats() -> EngineStats:
    """The process-wide collector."""
    return _STATS


def introspection_enabled() -> bool:
    """Fast flag check; engines call this once per run, then keep a local."""
    return _ENABLED


def set_introspection(enabled: bool) -> EngineStats:
    """Enable/disable engine introspection; returns the collector
    (cleared when switching on, so a report covers one command)."""
    global _ENABLED
    if enabled and not _ENABLED:
        _STATS.clear()
    _ENABLED = bool(enabled)
    return _STATS
