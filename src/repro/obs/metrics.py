"""Metrics registry: counters, gauges and histograms for the harness.

Deliberately tiny — no label cardinality explosion, no export protocol
dependencies. Instruments are created on first use (``registry.counter(
"sweep.points_timed")``), snapshots are plain dicts, and snapshots merge,
which is how ``--jobs`` worker processes ship their numbers back to the
parent sweep (instrument objects never cross the process boundary).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counter:
    """Monotonically increasing count (events, items processed)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (queue depth, current config hash, ...)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Observed-value distribution with exact summary statistics.

    Keeps every observation (harness-scale cardinality: one per sweep
    stage, not one per trace record), so percentiles are exact.
    """

    name: str
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.values:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1,
                          round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]


class MetricsRegistry:
    """Name-addressed instrument store with mergeable snapshots."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram(name))

    def snapshot(self) -> dict:
        """Plain-data view: picklable, JSON-serializable, mergeable."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {n: list(h.values)
                           for n, h in self._histograms.items()},
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry.

        Counters and histogram observations add; gauges take the incoming
        value (last write wins, which is what a progress gauge wants).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, values in snapshot.get("histograms", {}).items():
            self.histogram(name).values.extend(values)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: process-wide default registry (harness code records here; workers build
#: their own and the parent merges their snapshots).
_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY
