"""Artifact validator: ``python -m repro.obs.check file [file ...]``.

Sniffs each file's content — a run manifest (``repro.manifest/1``) or a
Chrome/Perfetto ``trace_event`` dump — and validates it against the
matching schema. Exits non-zero on the first invalid or unrecognizable
file, so CI can assert that exported artifacts are well-formed without
any extra tooling.
"""

from __future__ import annotations

import json
import sys

from repro.obs.manifest import MANIFEST_SCHEMA, validate_manifest
from repro.obs.perfetto import validate_trace_events


def check_file(path: str) -> str:
    """Validate one artifact; returns its kind ('manifest' or 'trace').

    Raises ``ValueError`` when the file is neither, or fails validation.
    """
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: top level must be a JSON object")
    if data.get("schema") == MANIFEST_SCHEMA:
        validate_manifest(data)
        return "manifest"
    if "traceEvents" in data:
        validate_trace_events(data)
        return "trace"
    raise ValueError(
        f"{path}: neither a {MANIFEST_SCHEMA} manifest nor a "
        "trace_event dump"
    )


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    if not args:
        print("usage: python -m repro.obs.check file [file ...]",
              file=sys.stderr)
        return 2
    for path in args:
        try:
            kind = check_file(path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            return 1
        print(f"ok   {path} ({kind})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
