"""Artifact validator: ``python -m repro.obs.check file [file ...]``.

Sniffs each file's content — a run manifest (``repro.manifest/1``), a
Chrome/Perfetto ``trace_event`` dump, a JSONL run log
(``repro.runlog/1``), a JSONL perf ledger (``repro.ledger/1``), or an
HTML dashboard (``repro.dash/1``) — and validates it against the matching
schema. Exits non-zero on the first invalid or unrecognizable file, so CI
can assert that exported artifacts are well-formed without extra tooling.

Diagnosis rides on the shared :mod:`repro.lint` findings pipeline
(rules ``O001``-``O007``): :func:`check_artifacts` returns a
:class:`repro.lint.findings.FindingsReport` with the same severity and
exit-code model as every other lint pass, and the CLI here is a thin
fail-fast wrapper over it.
"""

from __future__ import annotations

import json
import sys

from repro.lint.findings import Finding, FindingsReport
from repro.lint.rules import finding
from repro.obs.manifest import MANIFEST_SCHEMA, validate_manifest
from repro.obs.perfetto import validate_trace_events


def _sniff(path: str):
    """Read + parse one artifact; returns ``(kind, payload)``.

    ``kind`` is one of ``manifest``/``trace``/``runlog``/``ledger``/
    ``dashboard``; raises ``LookupError`` for an unrecognized shape and
    ``OSError``/``ValueError`` for unreadable/unparseable content.
    """
    from repro.obs.htmlreport import DASH_MARKER
    from repro.obs.ledger import LEDGER_SCHEMA
    from repro.obs.runlog import RUNLOG_SCHEMA

    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("<!DOCTYPE html>") or DASH_MARKER in text[:256]:
        return "dashboard", text
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict):
        if data.get("schema") == MANIFEST_SCHEMA:
            return "manifest", data
        if "traceEvents" in data:
            return "trace", data
        # a one-line JSONL file parses as plain JSON; route by its tag
        if data.get("schema") == RUNLOG_SCHEMA:
            return "runlog", text
        if data.get("schema") == LEDGER_SCHEMA:
            return "ledger", text
    if data is None and stripped.startswith("{"):
        # multiple JSON objects -> JSON Lines; sniff the first line's tag
        first_raw = stripped.splitlines()[0]
        try:
            first = json.loads(first_raw)
        except json.JSONDecodeError as e:
            raise ValueError(f"line 1 is not valid JSON: {e}") from e
        if isinstance(first, dict):
            if first.get("schema") == RUNLOG_SCHEMA:
                return "runlog", text
            if first.get("schema") == LEDGER_SCHEMA:
                return "ledger", text
    raise LookupError(
        f"neither a {MANIFEST_SCHEMA} manifest, a trace_event dump, a "
        "JSONL run log/ledger, nor an HTML dashboard"
    )


#: kind -> (validator over the sniffed payload, O-rule for violations).
def _validate_runlog(path: str, _payload) -> None:
    from repro.obs.runlog import load_and_validate

    load_and_validate(path)


def _validate_ledger(path: str, _payload) -> None:
    from repro.obs.ledger import load_and_validate

    load_and_validate(path)


_CHECKS = {
    "manifest": (lambda path, data: validate_manifest(data), "O002"),
    "trace": (lambda path, data: validate_trace_events(data), "O003"),
    "runlog": (_validate_runlog, "O005"),
    "ledger": (_validate_ledger, "O006"),
    "dashboard": (None, "O007"),  # resolved lazily (import cycle hygiene)
}


def _run_check(kind: str, path: str, payload) -> None:
    validate, _ = _CHECKS[kind]
    if kind == "dashboard":
        from repro.obs.htmlreport import validate_dashboard

        validate_dashboard(payload)
        return
    validate(path, payload)


def check_file(path: str) -> str:
    """Validate one artifact; returns its kind ('manifest', 'trace',
    'runlog', 'ledger' or 'dashboard').

    Raises ``ValueError`` when the file is none of them, or fails
    validation.
    """
    try:
        kind, payload = _sniff(path)
    except LookupError as exc:
        raise ValueError(f"{path}: {exc}") from None
    _run_check(kind, path, payload)
    return kind


def check_file_finding(path: str) -> tuple[str | None, Finding | None]:
    """Findings-pipeline view of one artifact: ``(kind, finding)``.

    Exactly one of the two is non-None: a recognized, valid artifact
    yields its kind; anything else yields an O0xx ERROR finding. The
    rule follows the stage that rejected the file, not its message:
    unreadable/unparseable -> O004, unrecognized shape -> O001, then
    per-kind validation -> O002 (manifest), O003 (trace), O005 (run
    log), O006 (ledger), O007 (dashboard).
    """
    try:
        kind, payload = _sniff(path)
    except (OSError, ValueError) as exc:
        return None, finding("O004", path, str(exc))
    except LookupError as exc:
        return None, finding("O001", path, str(exc))
    try:
        _run_check(kind, path, payload)
    except ValueError as exc:
        return None, finding(_CHECKS[kind][1], path, str(exc))
    return kind, None


def check_artifacts(paths: list[str]) -> FindingsReport:
    """Validate many artifacts into one findings report (never raises)."""
    report = FindingsReport()
    for path in paths:
        _, bad = check_file_finding(path)
        if bad is not None:
            report.add(bad)
    return report


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    if not args:
        print("usage: python -m repro.obs.check file [file ...]",
              file=sys.stderr)
        return 2
    for path in args:
        kind, bad = check_file_finding(path)
        if bad is not None:
            print(f"FAIL {path}: {bad.message}", file=sys.stderr)
            return FindingsReport([bad]).exit_code()
        print(f"ok   {path} ({kind})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
