"""Artifact validator: ``python -m repro.obs.check file [file ...]``.

Sniffs each file's content — a run manifest (``repro.manifest/1``) or a
Chrome/Perfetto ``trace_event`` dump — and validates it against the
matching schema. Exits non-zero on the first invalid or unrecognizable
file, so CI can assert that exported artifacts are well-formed without
any extra tooling.

Diagnosis rides on the shared :mod:`repro.lint` findings pipeline
(rules ``O001``-``O004``): :func:`check_artifacts` returns a
:class:`repro.lint.findings.FindingsReport` with the same severity and
exit-code model as every other lint pass, and the CLI here is a thin
fail-fast wrapper over it.
"""

from __future__ import annotations

import json
import sys

from repro.lint.findings import Finding, FindingsReport
from repro.lint.rules import finding
from repro.obs.manifest import MANIFEST_SCHEMA, validate_manifest
from repro.obs.perfetto import validate_trace_events


def check_file(path: str) -> str:
    """Validate one artifact; returns its kind ('manifest' or 'trace').

    Raises ``ValueError`` when the file is neither, or fails validation.
    """
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: top level must be a JSON object")
    if data.get("schema") == MANIFEST_SCHEMA:
        validate_manifest(data)
        return "manifest"
    if "traceEvents" in data:
        validate_trace_events(data)
        return "trace"
    raise ValueError(
        f"{path}: neither a {MANIFEST_SCHEMA} manifest nor a "
        "trace_event dump"
    )


def check_file_finding(path: str) -> tuple[str | None, Finding | None]:
    """Findings-pipeline view of one artifact: ``(kind, finding)``.

    Exactly one of the two is non-None: a recognized, valid artifact
    yields its kind; anything else yields an O0xx ERROR finding. The
    rule follows the stage that rejected the file, not its message:
    unreadable/unparseable -> O004, unrecognized shape -> O001,
    manifest validation -> O002, trace-event validation -> O003.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return None, finding("O004", path, str(exc))
    if isinstance(data, dict) and data.get("schema") == MANIFEST_SCHEMA:
        try:
            validate_manifest(data)
        except ValueError as exc:
            return None, finding("O002", path, str(exc))
        return "manifest", None
    if isinstance(data, dict) and "traceEvents" in data:
        try:
            validate_trace_events(data)
        except ValueError as exc:
            return None, finding("O003", path, str(exc))
        return "trace", None
    msg = ("top level must be a JSON object" if not isinstance(data, dict)
           else f"neither a {MANIFEST_SCHEMA} manifest nor a "
                "trace_event dump")
    return None, finding("O001", path, msg)


def check_artifacts(paths: list[str]) -> FindingsReport:
    """Validate many artifacts into one findings report (never raises)."""
    report = FindingsReport()
    for path in paths:
        _, bad = check_file_finding(path)
        if bad is not None:
            report.add(bad)
    return report


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    if not args:
        print("usage: python -m repro.obs.check file [file ...]",
              file=sys.stderr)
        return 2
    for path in args:
        kind, bad = check_file_finding(path)
        if bad is not None:
            print(f"FAIL {path}: {bad.message}", file=sys.stderr)
            return FindingsReport([bad]).exit_code()
        print(f"ok   {path} ({kind})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
