"""Nested span tracer for the sweep harness.

A span is one timed stage (trace generation, lowering, batch re-timing)
with a wall-clock extent and optional simulated-cycle extent. Spans nest
via a context-manager stack, are plain picklable dataclasses (worker
processes return theirs; the parent adopts them), and export to the
Chrome/Perfetto ``trace_event`` format via :mod:`repro.obs.perfetto`.

The process-wide tracer starts *disabled*: ``span()`` then costs one
attribute check and records nothing, keeping instrumentation overhead off
the sweep fast path unless the user asked for a trace dump.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One completed (or in-flight) harness stage."""

    name: str
    t0: float                    # wall clock, time.perf_counter()
    t1: float = 0.0              # 0.0 while open
    depth: int = 0
    pid: int = 0                 # recording process (worker spans differ)
    attrs: dict = field(default_factory=dict)
    cycles0: float | None = None  # simulated-cycle extent, if meaningful
    cycles1: float | None = None

    @property
    def wall_s(self) -> float:
        return max(0.0, self.t1 - self.t0)

    def set_cycles(self, start: float, end: float) -> None:
        self.cycles0 = float(start)
        self.cycles1 = float(end)


class SpanTracer:
    """Collects nested spans; one per process (plus ad-hoc local ones)."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self.origin = time.perf_counter()

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a nested span; yields the :class:`Span` (or ``None`` when
        the tracer is disabled, so callers never pay for bookkeeping)."""
        if not self.enabled:
            yield None
            return
        s = Span(name=name, t0=time.perf_counter(),
                 depth=len(self._stack), pid=os.getpid(), attrs=dict(attrs))
        self._stack.append(s)
        self.spans.append(s)
        try:
            yield s
        finally:
            s.t1 = time.perf_counter()
            self._stack.pop()

    def adopt(self, spans: list[Span], **extra_attrs) -> None:
        """Fold spans recorded elsewhere (a worker process) into this
        tracer, preserving their wall-clock extents and pids."""
        if not self.enabled:
            return
        for s in spans:
            if extra_attrs:
                s.attrs.update(extra_attrs)
            self.spans.append(s)

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self.origin = time.perf_counter()

    def reset_stack(self) -> int:
        """Close any dangling open spans (a figure aborted mid-span) and
        drop the nesting stack, keeping every completed span. Returns the
        number of spans force-closed — callers treat nonzero as a sign
        the previous figure did not unwind cleanly."""
        dangling = 0
        for s in self._stack:
            if not s.t1:
                s.t1 = time.perf_counter()
                dangling += 1
        self._stack.clear()
        return dangling


#: process-wide tracer, disabled by default (CLI enables for --emit-trace).
_TRACER = SpanTracer(enabled=False)


def get_tracer() -> SpanTracer:
    """The process-wide tracer."""
    return _TRACER


def set_tracing(enabled: bool) -> SpanTracer:
    """Enable/disable the process-wide tracer; returns it (cleared when
    switching on, so an export contains exactly one command's spans)."""
    if enabled and not _TRACER.enabled:
        _TRACER.clear()
    _TRACER.enabled = enabled
    return _TRACER
