"""Observability state lifecycle across multi-figure commands.

All four observability surfaces are process-wide singletons (metrics
registry, span tracer, run log, engine-stats collector) so instrumented
code anywhere in the harness can reach them without threading handles.
The cost: a command that runs *several* sweep figures in sequence
(``repro-sdv report``, ``--kernel all``) leaks state between them — a
figure aborted by an exception leaves the span stack and run-log context
path dangling, and per-figure metrics pile into one undifferentiated
registry.

:func:`reset_figure_state` is the boundary call between figures: it
clears per-figure *accumulation* (metrics instruments) and repairs any
dangling *nesting* state (open spans, run-log context path) while keeping
everything already completed — spans already closed and run-log records
already emitted survive, so an end-of-command ``--emit-trace`` /
``--emit-runlog`` export still covers the whole command.
"""

from __future__ import annotations

from repro.obs.metrics import get_metrics
from repro.obs.runlog import get_runlog
from repro.obs.spans import get_tracer


def reset_figure_state(*, clear_metrics: bool = True) -> int:
    """Reset per-figure observability state at a figure boundary.

    Clears the metrics registry (fresh counters per figure; pass
    ``clear_metrics=False`` to keep accumulating), force-closes dangling
    open spans without discarding completed ones, and drops any dangling
    run-log context scopes without discarding recorded events. Returns
    the number of spans that had to be force-closed (nonzero means the
    previous figure did not unwind cleanly).
    """
    if clear_metrics:
        get_metrics().clear()
    dangling = get_tracer().reset_stack()
    log = get_runlog()
    log.reset_context()
    if dangling:
        log.event("figure.dangling_spans", level="warn", count=dangling)
    return dangling
