"""Chrome/Perfetto ``trace_event`` JSON export.

Both exporters produce the stable JSON object format understood by
``chrome://tracing``, https://ui.perfetto.dev and ``trace_processor``:
a top-level ``{"traceEvents": [...]}`` with complete (``"ph": "X"``)
events carrying microsecond ``ts``/``dur``.

Two sources, two time bases:

* harness **spans** (:mod:`repro.obs.spans`) — wall-clock seconds, scaled
  to microseconds; one Perfetto process row per OS pid, so ``--jobs``
  worker activity lands on separate rows;
* engine **timelines** (:mod:`repro.obs.timeline`) — simulated cycles,
  exported 1 cycle = 1 µs; one thread row per machine unit track.

``validate_trace_events`` is the schema gate CI runs over emitted files.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.spans import Span
from repro.obs.timeline import TimelineRecorder

#: allowed phase codes in emitted traces (complete slices + instants +
#: metadata records).
_PHASES = {"X", "i", "M"}


def trace_events_from_spans(spans: list[Span], *,
                            origin: float | None = None) -> list[dict]:
    """Spans -> complete events; pid = recording process, tid = nest depth."""
    if not spans:
        return []
    t0 = origin if origin is not None else min(s.t0 for s in spans)
    events = []
    pids = sorted({s.pid for s in spans})
    for pid in pids:
        label = "sweep-harness" if pid == pids[0] else f"worker-{pid}"
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": label}})
    for s in spans:
        args = dict(s.attrs)
        if s.cycles0 is not None:
            args["cycles"] = (s.cycles1 or 0.0) - s.cycles0
        events.append({
            "ph": "X",
            "name": s.name,
            "cat": "harness",
            "pid": s.pid,
            "tid": s.depth,
            "ts": (s.t0 - t0) * 1e6,
            "dur": s.wall_s * 1e6,
            "args": args,
        })
    return events


def trace_events_from_timeline(timeline: TimelineRecorder, *,
                               pid: int = 1, label: str = "") -> list[dict]:
    """Engine timeline -> complete events, 1 simulated cycle = 1 µs."""
    tracks = []
    for e in timeline.events:
        if e.track not in tracks:
            tracks.append(e.track)
    name = label or (f"sim[{timeline.engine}]" if timeline.engine else "sim")
    events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": name}},
    ]
    for tid, track in enumerate(tracks):
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": track}})
    tids = {track: tid for tid, track in enumerate(tracks)}
    for e in timeline.events:
        ev = {
            "ph": "X" if e.dur > 0 else "i",
            "name": e.name,
            "cat": "sim",
            "pid": pid,
            "tid": tids[e.track],
            "ts": e.start,
            "args": dict(e.args),
        }
        if e.dur > 0:
            ev["dur"] = e.dur
        else:
            ev["s"] = "t"  # instant scope: thread
        events.append(ev)
    return events


def write_trace(path, events: list[dict], *, metadata: dict | None = None
                ) -> Path:
    """Write a trace_event JSON object file; returns the path."""
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(payload), encoding="utf-8")
    return p


def validate_trace_events(obj) -> None:
    """Raise ``ValueError`` unless ``obj`` is a valid trace_event object.

    Checks the object format's structural contract: a ``traceEvents`` list
    whose entries carry a known phase, a name, integer pid/tid, and — for
    complete events — non-negative ``ts``/``dur`` numbers.
    """
    if not isinstance(obj, dict):
        raise ValueError("trace must be a JSON object")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace missing 'traceEvents' list")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where} is not an object")
        ph = ev.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"{where} has unsupported phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ValueError(f"{where} missing event name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise ValueError(f"{where} missing integer {key!r}")
        if ph in ("X", "i"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"{where} needs a non-negative ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where} needs a non-negative dur")


def load_and_validate(path) -> dict:
    """Read a trace file and validate it; returns the parsed object."""
    obj = json.loads(Path(path).read_text(encoding="utf-8"))
    validate_trace_events(obj)
    return obj
