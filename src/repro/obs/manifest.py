"""Machine-readable run manifests.

Every exported result (``--emit-json`` sweeps, ``repro-sdv profile``)
carries a manifest answering "what exactly produced these numbers": config
hash, workload fingerprint, engine, git revision, and the per-run cycle
totals with their attribution buckets. The schema is versioned so later
readers (BENCH trajectory tooling, CI artifact checks) can hard-fail on
drift instead of silently misreading.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from pathlib import Path

from repro.config import SdvConfig

#: bump on any backwards-incompatible manifest layout change.
MANIFEST_SCHEMA = "repro.manifest/1"

#: keys every manifest must carry (validator contract).
_REQUIRED = ("schema", "kernel", "engine", "config_hash", "created_unix",
             "runs")
#: keys every per-run entry must carry.
_RUN_REQUIRED = ("impl", "cycles")


def config_hash(config: SdvConfig) -> str:
    """Stable short hash of the full hardware build + knob settings.

    ``SdvConfig`` is a frozen dataclass tree of plain values, so its repr
    is deterministic and exhaustive.
    """
    return hashlib.sha256(repr(config).encode()).hexdigest()[:16]


def git_revision() -> str | None:
    """Current repo revision, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def build_manifest(*, kernel: str, engine: str, config: SdvConfig,
                   runs: list[dict], scale: str | None = None,
                   seed: int | None = None,
                   workload_fingerprint: str | None = None,
                   axis: str | None = None,
                   points: list[int] | None = None,
                   extra: dict | None = None) -> dict:
    """Assemble a schema-versioned manifest.

    ``runs`` is one entry per timed implementation:
    ``{"impl": "vl256", "vl": 256, "cycles": ..., "buckets": {...}}``;
    ``buckets``, when present, must sum (left to right) bit-exactly to
    ``cycles`` — the validator enforces it, and JSON round-trips Python
    floats exactly, so the invariant survives serialization.
    """
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "kernel": kernel,
        "engine": engine,
        "config_hash": config_hash(config),
        "git_rev": git_revision(),
        "created_unix": time.time(),
        "runs": runs,
    }
    if scale is not None:
        manifest["scale"] = scale
    if seed is not None:
        manifest["seed"] = seed
    if workload_fingerprint is not None:
        manifest["workload"] = workload_fingerprint
    if axis is not None:
        manifest["axis"] = axis
    if points is not None:
        manifest["points"] = list(points)
    if extra:
        manifest.update(extra)
    return manifest


def validate_manifest(manifest) -> None:
    """Raise ``ValueError`` unless ``manifest`` honours the schema.

    Beyond key/type presence, re-checks the attribution invariant: each
    run's buckets, summed in stored order, equal its cycle total exactly.
    """
    if not isinstance(manifest, dict):
        raise ValueError("manifest must be a JSON object")
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"unsupported manifest schema {manifest.get('schema')!r} "
            f"(expected {MANIFEST_SCHEMA})"
        )
    for key in _REQUIRED:
        if key not in manifest:
            raise ValueError(f"manifest missing required key {key!r}")
    runs = manifest["runs"]
    if not isinstance(runs, list) or not runs:
        raise ValueError("manifest 'runs' must be a non-empty list")
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            raise ValueError(f"{where} is not an object")
        for key in _RUN_REQUIRED:
            if key not in run:
                raise ValueError(f"{where} missing required key {key!r}")
        if not isinstance(run["cycles"], (int, float)):
            raise ValueError(f"{where} cycles must be a number")
        buckets = run.get("buckets")
        if buckets is not None:
            if not isinstance(buckets, dict):
                raise ValueError(f"{where} buckets must be an object")
            total = 0.0
            for name, value in buckets.items():
                if not isinstance(value, (int, float)):
                    raise ValueError(
                        f"{where} bucket {name!r} must be a number")
                total += value
            if total != run["cycles"]:
                raise ValueError(
                    f"{where} buckets sum to {total!r}, not the cycle "
                    f"total {run['cycles']!r}"
                )


def write_manifest(path, manifest: dict) -> Path:
    """Validate and write a manifest; returns the path."""
    validate_manifest(manifest)
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    return p


def load_and_validate(path) -> dict:
    """Read a manifest file and validate it; returns the parsed object."""
    manifest = json.loads(Path(path).read_text(encoding="utf-8"))
    validate_manifest(manifest)
    return manifest
