"""Observability: explain *why* a run took the cycles it took.

The paper's claims are causal — long vectors tolerate latency because the
memory queue keeps enough element requests outstanding to overlap the added
DDR4 cycles — but a bare cycle total cannot show that. This package turns
the simulator into a study instrument:

* :mod:`repro.obs.attribution` — decomposes every run's cycle total into
  named buckets (issue/decode, vector-unit busy, exposed DRAM latency,
  bandwidth throttle, NoC, cache service) that sum **bit-exactly** to
  ``CycleReport.cycles`` in every engine, plus the derived
  "latency hidden by overlap" metric — the paper's claim (i), observable;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with mergeable
  snapshots (workers ship theirs back to the sweep harness);
* :mod:`repro.obs.spans` — nested wall-time spans over the harness stages
  (trace generation, lowering, re-timing), Perfetto-exportable;
* :mod:`repro.obs.timeline` — per-record machine activity recorded by the
  timing engines (simulated-cycle extents);
* :mod:`repro.obs.perfetto` — Chrome/Perfetto ``trace_event`` JSON export
  for both spans and timelines;
* :mod:`repro.obs.manifest` — schema-versioned machine-readable run
  manifests written next to sweep results;
* :mod:`repro.obs.profile` — the ``repro-sdv profile`` harness: the
  per-VL attribution table ("short reasons" view);
* :mod:`repro.obs.runlog` — structured JSONL run log with trace-context
  propagation across worker processes, merged into one ordered stream;
* :mod:`repro.obs.engine_stats` — opt-in internal counters from the
  timing-engine hot paths (wheel occupancy, slab recycling, cache hit
  rates), disabled-cost pinned to unmeasurable;
* :mod:`repro.obs.ledger` — longitudinal machine-fingerprinted perf
  records with a median+MAD regression detector (``repro-sdv
  perf-diff``);
* :mod:`repro.obs.htmlreport` — the self-contained HTML run dashboard
  (``repro-sdv dash``);
* :mod:`repro.obs.lifecycle` — figure-boundary reset of the process-wide
  observability singletons.
"""

from repro.obs.attribution import (
    BUCKET_ORDER,
    CycleAttribution,
    attribute,
    attribute_many,
    attribution_ladder,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_hash,
    validate_manifest,
    write_manifest,
)
from repro.obs.engine_stats import (
    EngineStats,
    get_engine_stats,
    set_introspection,
    snapshot_delta,
)
from repro.obs.htmlreport import (
    DASH_SCHEMA,
    build_dashboard,
    render_dashboard,
    validate_dashboard,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    Verdict,
    append_record,
    build_record,
    check_series,
    detect_regression,
    perf_diff,
)
from repro.obs.lifecycle import reset_figure_state
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.perfetto import (
    trace_events_from_spans,
    trace_events_from_timeline,
    validate_trace_events,
    write_trace,
)
from repro.obs.runlog import (
    RUNLOG_SCHEMA,
    RunLog,
    get_runlog,
    set_logging,
    write_runlog,
)
from repro.obs.spans import SpanTracer, get_tracer, set_tracing
from repro.obs.timeline import TimelineRecorder

__all__ = [
    "BUCKET_ORDER",
    "CycleAttribution",
    "DASH_SCHEMA",
    "EngineStats",
    "LEDGER_SCHEMA",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "RUNLOG_SCHEMA",
    "RunLog",
    "SpanTracer",
    "TimelineRecorder",
    "Verdict",
    "append_record",
    "attribute",
    "attribute_many",
    "attribution_ladder",
    "build_dashboard",
    "build_manifest",
    "build_record",
    "check_series",
    "config_hash",
    "detect_regression",
    "get_engine_stats",
    "get_metrics",
    "get_runlog",
    "get_tracer",
    "perf_diff",
    "render_dashboard",
    "reset_figure_state",
    "set_introspection",
    "set_logging",
    "set_tracing",
    "snapshot_delta",
    "trace_events_from_spans",
    "trace_events_from_timeline",
    "validate_dashboard",
    "validate_manifest",
    "validate_trace_events",
    "write_manifest",
    "write_runlog",
    "write_trace",
]
