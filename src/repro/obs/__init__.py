"""Observability: explain *why* a run took the cycles it took.

The paper's claims are causal — long vectors tolerate latency because the
memory queue keeps enough element requests outstanding to overlap the added
DDR4 cycles — but a bare cycle total cannot show that. This package turns
the simulator into a study instrument:

* :mod:`repro.obs.attribution` — decomposes every run's cycle total into
  named buckets (issue/decode, vector-unit busy, exposed DRAM latency,
  bandwidth throttle, NoC, cache service) that sum **bit-exactly** to
  ``CycleReport.cycles`` in every engine, plus the derived
  "latency hidden by overlap" metric — the paper's claim (i), observable;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with mergeable
  snapshots (workers ship theirs back to the sweep harness);
* :mod:`repro.obs.spans` — nested wall-time spans over the harness stages
  (trace generation, lowering, re-timing), Perfetto-exportable;
* :mod:`repro.obs.timeline` — per-record machine activity recorded by the
  timing engines (simulated-cycle extents);
* :mod:`repro.obs.perfetto` — Chrome/Perfetto ``trace_event`` JSON export
  for both spans and timelines;
* :mod:`repro.obs.manifest` — schema-versioned machine-readable run
  manifests written next to sweep results;
* :mod:`repro.obs.profile` — the ``repro-sdv profile`` harness: the
  per-VL attribution table ("short reasons" view).
"""

from repro.obs.attribution import (
    BUCKET_ORDER,
    CycleAttribution,
    attribute,
    attribute_many,
    attribution_ladder,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_hash,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.perfetto import (
    trace_events_from_spans,
    trace_events_from_timeline,
    validate_trace_events,
    write_trace,
)
from repro.obs.spans import SpanTracer, get_tracer, set_tracing
from repro.obs.timeline import TimelineRecorder

__all__ = [
    "BUCKET_ORDER",
    "CycleAttribution",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "SpanTracer",
    "TimelineRecorder",
    "attribute",
    "attribute_many",
    "attribution_ladder",
    "build_manifest",
    "config_hash",
    "get_metrics",
    "get_tracer",
    "set_tracing",
    "trace_events_from_spans",
    "trace_events_from_timeline",
    "validate_manifest",
    "validate_trace_events",
    "write_manifest",
    "write_trace",
]
