"""The ``repro-sdv profile`` harness: per-VL attribution breakdowns.

Runs one kernel at every vector length (plus the scalar build), attributes
each run's cycles via :mod:`repro.obs.attribution`, and renders the result
as a table with one column per bucket — the "short reasons" view: reading
down the DRAM-stall column shows the paper's latency-tolerance mechanism
directly, as exposed stall cycles shrinking while vectors grow.

Also the export point for single-run artifacts: a schema-versioned
manifest (:mod:`repro.obs.manifest`) and a Perfetto trace combining the
engine timelines of every implementation with the harness spans
(:mod:`repro.obs.perfetto`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sweeps import (
    DEFAULT_VLS,
    _impls,
    impl_label,
    run_implementation,
    workload_fingerprint,
)
from repro.engine.event_fast import simulate_events_fast
from repro.engine.event_sim import simulate_events
from repro.engine.fast_sim import simulate_fast
from repro.engine.results import CycleReport
from repro.kernels import KERNELS
from repro.obs.attribution import BUCKET_LABELS, BUCKET_ORDER, CycleAttribution
from repro.obs.manifest import build_manifest
from repro.obs.perfetto import (
    trace_events_from_spans,
    trace_events_from_timeline,
)
from repro.obs.spans import get_tracer
from repro.obs.timeline import TimelineRecorder
from repro.util.tables import TextTable
from repro.workloads import get_scale


@dataclass
class ProfileEntry:
    """One implementation's timed + attributed run."""

    impl: str
    vl: int | None
    report: CycleReport
    attribution: CycleAttribution
    timeline: TimelineRecorder | None = None


@dataclass
class ProfileResult:
    """All implementations of one kernel, timed, attributed, exportable."""

    kernel: str
    scale: str
    seed: int
    engine: str
    config: object            # the base SdvConfig (max VL varies per entry)
    workload_fp: str
    entries: list[ProfileEntry] = field(default_factory=list)
    #: engine-introspection snapshot covering this profile's runs
    #: (``profile_kernel(engine_stats=True)``), else None
    engine_stats: dict | None = None

    def render(self, *, fractions: bool = False) -> str:
        """The per-VL attribution table (cycles, or shares of the total)."""
        cols = ["impl", "cycles"] + [BUCKET_LABELS[b] for b in BUCKET_ORDER]
        cols += ["DRAM lat hidden"]
        t = TextTable(cols)
        for e in self.entries:
            a = e.attribution
            if fractions:
                row = [f"{a.fraction(b) * 100:.1f}%" for b in BUCKET_ORDER]
                hidden = (a.dram_latency_hidden / a.dram_latency_demand
                          if a.dram_latency_demand else 0.0)
                row.append(f"{hidden * 100:.1f}%")
            else:
                row = [f"{a.buckets[b] / 1e3:.1f}k" for b in BUCKET_ORDER]
                row.append(f"{a.dram_latency_hidden / 1e3:.1f}k")
            t.add_row([e.impl, f"{a.total / 1e3:.1f}k"] + row)
        unit = "% of total" if fractions else "kcycles"
        return (f"cycle attribution — {self.kernel} ({self.scale} scale, "
                f"{self.engine} engine, {unit})\n" + t.render())

    def render_engine_stats(self) -> str:
        """The engine-counter table (``repro-sdv profile --engine-stats``)."""
        from repro.obs.engine_stats import EngineStats

        stats = EngineStats()
        if self.engine_stats:
            stats.merge(self.engine_stats)
        return stats.render()

    def manifest(self) -> dict:
        """Schema-versioned manifest with per-run attribution buckets."""
        runs = []
        for e in self.entries:
            a = e.attribution
            runs.append({
                "impl": e.impl,
                "vl": e.vl,
                "cycles": a.total,
                "buckets": {b: a.buckets[b] for b in BUCKET_ORDER},
                "dram_latency_demand": a.dram_latency_demand,
                "dram_latency_hidden": a.dram_latency_hidden,
            })
        extra = None
        if self.engine_stats is not None:
            extra = {"engine_stats": self.engine_stats}
        return build_manifest(
            kernel=self.kernel, engine=self.engine, config=self.config,
            runs=runs, scale=self.scale, seed=self.seed,
            workload_fingerprint=self.workload_fp, extra=extra,
        )

    def trace_events(self) -> list[dict]:
        """Perfetto events: one process row per impl timeline + the
        harness spans."""
        events: list[dict] = []
        pid = 1
        for e in self.entries:
            if e.timeline is not None:
                events.extend(trace_events_from_timeline(
                    e.timeline, pid=pid,
                    label=f"{self.kernel}/{e.impl} [{e.timeline.engine}]"))
                pid += 1
        events.extend(trace_events_from_spans(get_tracer().spans))
        return events


def _generate_traces_parallel(spec, workload, impl_vls, *, verify: bool,
                              trace_cache, jobs: int):
    """Phase-A-style parallel trace generation for the profile harness.

    Fans one :func:`repro.core.sweeps._gen_task` per implementation across
    the worker pool; each worker publishes its sealed trace to the
    shared-memory plane and the parent adopts the segment. Returns
    ``(traces, refs)``: a ``{vl: TraceBuffer}`` of zero-copy attachments
    (implementations whose publish failed are absent — the caller
    regenerates those in-process) and the adopted :class:`shm.PlaneRef`
    list the caller must ``release`` once it is done with the views.
    """
    import os
    import pickle
    import uuid

    from repro.core import shm as shm_mod
    from repro.core.parallel import run_tasks
    from repro.core.sweeps import _gen_task, _sweep_worker_init
    from repro.memory.classify_fast import default_classifier
    from repro.obs import engine_stats as es_mod
    from repro.obs.metrics import get_metrics
    from repro.obs.runlog import get_runlog

    plane = shm_mod.get_plane()
    prefix = shm_mod.plane_prefix()
    nonce = uuid.uuid4().hex[:8]
    wl_payload = pickle.dumps(workload, protocol=4)
    workload_fp = workload_fingerprint(workload, payload=wl_payload)
    tracer = get_tracer()
    registry = get_metrics()
    runlog = get_runlog()
    engine_stats = es_mod.get_engine_stats()
    introspection = es_mod.introspection_enabled()
    my_pid = os.getpid()

    refs: list = []
    wref = shm_mod.publish_workload(workload, f"{nonce}:{spec.name}",
                                    payload=wl_payload)
    if wref is not None:
        refs.append(wref)
    rref = None
    reference = spec.reference(workload) if verify else None
    if verify and reference is not None:
        rref = shm_mod.publish_workload(reference,
                                        f"{nonce}:{spec.name}:ref")
        if rref is not None:
            refs.append(rref)
    tasks = [
        (spec.name if KERNELS.get(spec.name) is spec else spec,
         wref if wref is not None else workload, vl, None, verify,
         rref if rref is not None else reference, trace_cache, workload_fp,
         prefix, f"{nonce}:{spec.name}:{impl_label(vl)}",
         tracer.enabled, runlog.enabled, runlog.trace_id, introspection,
         default_classifier())
        for vl in impl_vls
    ]
    outs = run_tasks(_gen_task, tasks, jobs=jobs,
                     initializer=_sweep_worker_init)
    traces: dict = {}
    for vl, out in zip(impl_vls, outs):
        tracer.adopt(out.spans)
        registry.merge(out.metrics)
        runlog.adopt(out.log)
        if out.pid != my_pid:
            engine_stats.merge(out.engine_stats)
        if out.cref is not None and plane.adopt(out.cref):
            # own the classified sibling's lifecycle too (the profile
            # harness classifies per-sdv, so it only needs the segment
            # released, not attached)
            refs.append(out.cref)
        if out.ref is None or not plane.adopt(out.ref):
            continue
        refs.append(out.ref)
        # scoped attach: the adopted ref pins the mapping until release,
        # so the views in `traces` stay valid past the detach
        with plane.attached_trace(out.ref) as trace:
            if trace is not None:
                traces[vl] = trace
    runlog.event("profile.shm_published", kernel=spec.name,
                 segments=len(refs), bytes=sum(r.size for r in refs))
    return traces, refs


def profile_kernel(name: str, *, scale: str = "ci", seed: int = 7,
                   vls=DEFAULT_VLS, engine: str = "fast",
                   include_scalar: bool = True, verify: bool = True,
                   trace_cache=None, timelines: bool = False,
                   engine_stats: bool = False, jobs: int = 1,
                   shm: bool = True) -> ProfileResult:
    """Time + attribute one kernel at every VL (and the scalar build).

    ``timelines=True`` additionally records each run's machine-activity
    timeline (with the event engine when ``engine="event"``, else the fast
    engine — the batch engine computes identical cycles but walks all
    configs at once, so it records no per-run schedule).

    ``engine_stats=True`` turns on engine introspection for the duration
    of the profile and attaches the counter snapshot covering exactly
    these runs to :attr:`ProfileResult.engine_stats`.

    ``jobs > 1`` fans trace *generation* (the expensive stage) across
    worker processes over the shared-memory trace plane; timing and
    attribution stay in the parent, reading the published traces as
    zero-copy views. ``shm=False`` (or a platform without shared memory)
    keeps everything in-process, bit-identical either way.
    """
    from repro.core import shm as shm_mod
    from repro.obs import engine_stats as es_mod

    es_was = es_mod.introspection_enabled()
    es_before: dict | None = None
    if engine_stats:
        collector = es_mod.set_introspection(True)
        es_before = collector.snapshot()
    spec = KERNELS[name]
    workload = spec.prepare(get_scale(scale), seed)
    reference = spec.reference(workload) if verify else None
    tracer = get_tracer()
    result = None
    impl_vls = _impls(vls, include_scalar)
    plane_traces: dict = {}
    plane_refs: list = []
    if (jobs > 1 and shm and len(impl_vls) > 1
            and shm_mod.shm_available()):
        plane_traces, plane_refs = _generate_traces_parallel(
            spec, workload, impl_vls, verify=verify,
            trace_cache=trace_cache, jobs=jobs)
    try:
        for vl in impl_vls:
            label = impl_label(vl)
            with tracer.span(f"profile:{name}:{label}",
                             kernel=name, impl=label):
                if vl in plane_traces:
                    # trace arrived via the plane; the SDV rebuild is the
                    # same one every sweep worker does (classification and
                    # lowering are knob-independent, cached on the trace)
                    from repro.soc import FpgaSdv

                    sdv = FpgaSdv()
                    if vl is not None:
                        sdv.configure(max_vl=vl)
                    trace = plane_traces[vl]
                else:
                    sdv, trace = run_implementation(spec, workload, vl,
                                                    verify=verify,
                                                    reference=reference,
                                                    trace_cache=trace_cache)
                if result is None:
                    result = ProfileResult(
                        kernel=name, scale=scale, seed=seed, engine=engine,
                        config=sdv.config,
                        workload_fp=workload_fingerprint(workload),
                    )
                report = sdv.time(trace, engine=engine)
                att = sdv.attribute(trace, engine=engine)
                report.attribution = att
                timeline = None
                if timelines:
                    timeline = TimelineRecorder()
                    ct = sdv.classify(trace)
                    if engine == "event":
                        simulate_events_fast(ct, timeline=timeline)
                    elif engine == "event-ref":
                        simulate_events(ct, timeline=timeline)
                    else:
                        simulate_fast(ct, timeline=timeline)
                result.entries.append(ProfileEntry(
                    impl=label, vl=vl, report=report, attribution=att,
                    timeline=timeline,
                ))
    finally:
        if plane_refs:
            # done with the zero-copy views — unlink the sweep's segments
            plane = shm_mod.get_plane()
            for ref in plane_refs:
                plane.release(ref)
        if engine_stats:
            snap = es_mod.get_engine_stats().snapshot()
            if result is not None:
                result.engine_stats = es_mod.snapshot_delta(es_before, snap)
            es_mod.set_introspection(es_was)
    return result
