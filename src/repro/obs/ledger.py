"""Longitudinal perf ledger + robust regression detection.

The benchmarks used to leave bare ``.txt`` ratio dumps and a hand-set
"fail below 0.8x of a committed constant" bar. The ledger replaces both:
every bench run appends one machine-fingerprinted, schema-versioned JSON
line to ``benchmarks/results/ledger.jsonl``, and the detector compares a
fresh value against the *trailing window* of committed history with
robust statistics — median and MAD (median absolute deviation), which a
single outlier run cannot drag — instead of a constant someone typed in.

Detection contract (for "higher is better" metrics like speedup ratios):

* fewer than ``min_samples`` history points -> ``insufficient`` (callers
  fall back to their legacy fixed threshold, so a fresh clone still has
  a perf bar);
* otherwise the value passes if it clears ``median - mad_k * 1.4826 *
  MAD`` (the noise band; 1.4826 scales MAD to a Gaussian sigma) **or**
  ``median - min_rel_drop * abs(median)`` (the materiality band — with a
  tight history MAD approaches zero and any jitter would trip a pure
  noise test). A ``regression`` must fail both: statistically
  significant *and* material.

``repro-sdv perf-diff`` runs the detector over every series in a ledger;
perf-smoke CI runs it through the benches themselves.
"""

from __future__ import annotations

import getpass
import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path

#: bump on any backwards-incompatible ledger layout change.
LEDGER_SCHEMA = "repro.ledger/1"

#: keys every ledger record must carry (validator contract).
_REQUIRED = ("schema", "bench", "metric", "value", "unit", "scale",
             "created_unix", "machine")

#: default trailing-window shape for the detector.
WINDOW = 20
MIN_SAMPLES = 5


def machine_fingerprint() -> dict:
    """Anonymized description of the machine a record was measured on.

    The host name is hashed (ledgers are committed; raw host names leak),
    but the fields that explain *why* numbers differ across machines —
    platform, Python version, CPU count — stay readable. Ratio metrics
    (speedups measured within one run) are machine-independent; wall-time
    metrics should be compared per-fingerprint.
    """
    host = f"{platform.node()}:{_username()}"
    return {
        "id": hashlib.sha256(host.encode()).hexdigest()[:12],
        "platform": platform.platform(terse=True),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def _username() -> str:
    try:
        return getpass.getuser()
    except (KeyError, OSError):  # no passwd entry (containers)
        return "unknown"


def build_record(*, bench: str, metric: str, value: float, unit: str,
                 scale: str, attrs: dict | None = None,
                 git_rev: str | None = None) -> dict:
    """Assemble one schema-versioned ledger record."""
    if git_rev is None:
        from repro.obs.manifest import git_revision

        git_rev = git_revision()
    rec = {
        "schema": LEDGER_SCHEMA,
        "bench": bench,
        "metric": metric,
        "value": float(value),
        "unit": unit,
        "scale": scale,
        "created_unix": time.time(),
        "machine": machine_fingerprint(),
        "git_rev": git_rev,
    }
    if attrs:
        rec["attrs"] = attrs
    return rec


def validate_record(rec, where: str = "record") -> None:
    """Raise ``ValueError`` unless ``rec`` honours the schema."""
    if not isinstance(rec, dict):
        raise ValueError(f"{where} is not an object")
    if rec.get("schema") != LEDGER_SCHEMA:
        raise ValueError(
            f"{where} has unsupported schema {rec.get('schema')!r} "
            f"(expected {LEDGER_SCHEMA})"
        )
    for key in _REQUIRED:
        if key not in rec:
            raise ValueError(f"{where} missing required key {key!r}")
    for key in ("bench", "metric", "unit", "scale"):
        if not isinstance(rec[key], str) or not rec[key]:
            raise ValueError(f"{where} {key} must be a non-empty string")
    if not isinstance(rec["value"], (int, float)):
        raise ValueError(f"{where} value must be a number")
    if not isinstance(rec["created_unix"], (int, float)):
        raise ValueError(f"{where} created_unix must be a number")
    if not isinstance(rec["machine"], dict) or "id" not in rec["machine"]:
        raise ValueError(f"{where} machine must be an object with an 'id'")


def append_record(path, rec: dict) -> Path:
    """Validate and append one record to a JSONL ledger file."""
    validate_record(rec)
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(rec) + "\n")
    return p


def load_ledger(path) -> list[dict]:
    """Read a JSONL ledger; returns ``[]`` for a missing file."""
    p = Path(path)
    if not p.exists():
        return []
    records = []
    with p.open(encoding="utf-8") as fh:
        for n, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                records.append(json.loads(raw))
            except json.JSONDecodeError as e:
                raise ValueError(f"line {n} is not valid JSON: {e}") from e
    return records


def load_and_validate(path) -> list[dict]:
    """Read a ledger and validate every record; returns them in file
    order (which is append order, i.e. chronological per machine)."""
    records = load_ledger(path)
    if not records:
        raise ValueError(f"ledger {path} is empty or missing")
    for i, rec in enumerate(records):
        validate_record(rec, where=f"record[{i}]")
    return records


def series(records: list[dict], bench: str, metric: str,
           scale: str) -> list[float]:
    """The chronological value series of one (bench, metric, scale) key."""
    return [r["value"] for r in records
            if r.get("bench") == bench and r.get("metric") == metric
            and r.get("scale") == scale]


def series_keys(records: list[dict]) -> list[tuple[str, str, str]]:
    """Every distinct (bench, metric, scale) key, in first-seen order."""
    seen: dict[tuple[str, str, str], None] = {}
    for r in records:
        seen.setdefault((r["bench"], r["metric"], r["scale"]), None)
    return list(seen)


def series_direction(records: list[dict], bench: str, metric: str,
                     scale: str) -> str:
    """A series' improvement direction: ``"higher"`` (default — speedups,
    throughputs) or ``"lower"`` (overheads, wall times), taken from the
    last record carrying an ``attrs.direction`` tag."""
    direction = "higher"
    for r in records:
        if (r.get("bench") == bench and r.get("metric") == metric
                and r.get("scale") == scale):
            direction = (r.get("attrs") or {}).get("direction", direction)
    return direction


# ---------------------------------------------------------------- detector

#: MAD -> sigma for Gaussian noise.
_MAD_SIGMA = 1.4826


def _median(values: list[float]) -> float:
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2.0


@dataclass(frozen=True)
class Verdict:
    """One detector decision over one series."""

    status: str            # "ok" | "regression" | "insufficient"
    value: float           # the value under test
    median: float          # trailing-window median (0.0 if insufficient)
    mad: float             # trailing-window MAD
    threshold: float       # the bar the value had to clear
    samples: int           # history points the decision used
    reason: str

    @property
    def is_regression(self) -> bool:
        return self.status == "regression"


def detect_regression(history: list[float], value: float, *,
                      window: int = WINDOW,
                      min_samples: int = MIN_SAMPLES,
                      mad_k: float = 4.0,
                      min_rel_drop: float = 0.10) -> Verdict:
    """Judge ``value`` (higher is better) against its trailing history.

    ``history`` is chronological and must **not** include ``value``. The
    bar is ``min(median - mad_k * 1.4826 * MAD, median - min_rel_drop *
    abs(median))`` — inside the noise band of the last ``window`` runs
    *or* within ``min_rel_drop`` of their median passes; below both is a
    regression.
    """
    if len(history) < min_samples:
        return Verdict(
            status="insufficient", value=value, median=0.0, mad=0.0,
            threshold=0.0, samples=len(history),
            reason=(f"only {len(history)} history samples "
                    f"(need {min_samples}); caller should fall back to "
                    f"its fixed baseline"),
        )
    tail = history[-window:]
    med = _median(tail)
    mad = _median([abs(v - med) for v in tail])
    noise_bar = med - mad_k * _MAD_SIGMA * mad
    # abs() keeps the materiality band below the median when the series
    # is negative (a lower-is-better series judged on its negation)
    material_bar = med - min_rel_drop * abs(med)
    # a regression must be BOTH outside the noise band AND material, so
    # the bar is the lower of the two: a noisy series (large MAD) is not
    # failed for a swing its own history calls normal, and a tight series
    # (MAD ~ 0) is not failed for sub-materiality jitter
    threshold = min(noise_bar, material_bar)
    if value < threshold:
        drop = (med - value) / abs(med) if med else float("inf")
        return Verdict(
            status="regression", value=value, median=med, mad=mad,
            threshold=threshold, samples=len(tail),
            reason=(f"{value:.3g} is {drop:.1%} below the trailing "
                    f"median {med:.3g} (bar {threshold:.3g}, "
                    f"{len(tail)} samples, MAD {mad:.3g})"),
        )
    return Verdict(
        status="ok", value=value, median=med, mad=mad,
        threshold=threshold, samples=len(tail),
        reason=(f"{value:.3g} clears the bar {threshold:.3g} "
                f"(median {med:.3g}, {len(tail)} samples)"),
    )


def check_series(records: list[dict], bench: str, metric: str, scale: str,
                 value: float, **kwargs) -> Verdict:
    """Detector over a loaded ledger: judge ``value`` against the series'
    committed history."""
    return detect_regression(series(records, bench, metric, scale), value,
                             **kwargs)


def perf_diff(records: list[dict], **kwargs) -> list[tuple[tuple, Verdict]]:
    """Judge the *latest* record of every series against its own prior
    history (``repro-sdv perf-diff``). Returns ``[(key, verdict), ...]``.

    The detector is written for higher-is-better values; lower-is-better
    series (tagged ``attrs.direction: "lower"`` — overheads, wall times)
    are judged on their negation, with the verdict's value/median/
    threshold mapped back to the original sign.
    """
    out = []
    for key in series_keys(records):
        values = series(records, *key)
        if series_direction(records, *key) == "lower":
            v = detect_regression([-x for x in values[:-1]], -values[-1],
                                  **kwargs)
            v = Verdict(status=v.status, value=-v.value, median=-v.median,
                        mad=v.mad, threshold=-v.threshold,
                        samples=v.samples,
                        reason=v.reason + " [lower-is-better, judged "
                        "on the negated series]")
            out.append((key, v))
        else:
            out.append((key, detect_regression(values[:-1], values[-1],
                                               **kwargs)))
    return out


def render_perf_diff(results: list[tuple[tuple, Verdict]]) -> str:
    """Text table for the CLI: one line per series, worst first."""
    order = {"regression": 0, "insufficient": 1, "ok": 2}
    rows = sorted(results, key=lambda kv: order[kv[1].status])
    lines = ["perf-diff — latest value vs trailing history "
             "(median + MAD)"]
    if not rows:
        lines.append("  (ledger has no series)")
        return "\n".join(lines)
    for (bench, metric, scale), v in rows:
        tag = {"regression": "REGRESSED", "insufficient": "n/a",
               "ok": "ok"}[v.status]
        lines.append(f"  {tag:<9s} {bench}:{metric} [{scale}]  "
                     f"value {v.value:.3g}  {v.reason}")
    return "\n".join(lines)
