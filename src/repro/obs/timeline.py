"""Per-record machine-activity timeline recorded by the timing engines.

Where :mod:`repro.obs.spans` times harness stages in wall clock, the
timeline records *simulated* machine activity: which unit (scalar core,
arithmetic pipe, vector memory unit) was busy with which trace record over
which cycle interval. The event engine records its actual schedule; the
fast engine records its analytical start/completion times — comparing the
two dumps side by side in Perfetto is itself a debugging instrument.

Engines take an optional ``timeline=TimelineRecorder()`` argument and pay
nothing when it is ``None`` (the default on every sweep path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: canonical track names used by the engines
TRACK_SCALAR = "scalar-core"
TRACK_VARITH = "vpu-arith"
TRACK_VMEM = "vpu-mem"


@dataclass
class TimelineEvent:
    """One busy interval of one machine unit, in simulated cycles."""

    track: str
    name: str
    start: float
    dur: float
    args: dict = field(default_factory=dict)


@dataclass
class TimelineRecorder:
    """Append-only list of machine-activity intervals."""

    engine: str = ""
    events: list[TimelineEvent] = field(default_factory=list)

    def add(self, track: str, name: str, start: float, end: float,
            **args) -> None:
        self.events.append(TimelineEvent(
            track=track, name=name, start=float(start),
            dur=max(0.0, float(end) - float(start)), args=args,
        ))

    def instant(self, track: str, name: str, at: float, **args) -> None:
        """Zero-duration marker (barriers)."""
        self.events.append(TimelineEvent(
            track=track, name=name, start=float(at), dur=0.0, args=args,
        ))

    @property
    def end_cycle(self) -> float:
        return max((e.start + e.dur for e in self.events), default=0.0)
