"""Cycle attribution: *why* a run took the cycles it took.

The paper's headline claim — long vectors tolerate main-memory latency —
is an explanation, but the engines only report totals. This module
decomposes each run's cycle count into named buckets that sum **exactly**
(bit-for-bit, as floats) to ``CycleReport.cycles``:

``vpu_busy``
    cycles covered by useful VPU work (arith-pipe occupancy + memory-unit
    streaming/address generation at peak bandwidth);
``issue_decode``
    scalar issue, vector dispatch, vsetvl and scalar-result transfers;
``serial_other``
    residual serialization at the fully idealized memory level (barrier
    round trips, dependency bubbles neither demand term covers);
``cache_service``
    cycles attributable to L1/L2 access latency beyond the 1-cycle ideal;
``noc``
    cycles attributable to mesh hop + injection latency;
``dram_stall``
    cycles attributable to DRAM service + Latency Controller latency that
    the machine failed to hide behind other work — the bucket the paper
    predicts shrinks as VL grows;
``bw_throttle``
    cycles attributable to the Bandwidth Limiter window.

**Method: a successive-idealization ladder.** The same classified trace is
re-timed under a sequence of configs, each removing one latency source:

====  =====================================================================
L0    the actual config (total = the headline cycle count)
L1    L0 with the Bandwidth Limiter at peak (1 line/cycle)
L2    L1 with zero DRAM latency (service + extra = 0: DRAM behaves like L2)
L3    L2 with a zero-latency NoC (hop = inject = 0)
L4    L3 with minimal cache latencies (1-cycle L1 and L2 access)
====  =====================================================================

Each bucket is the cycle delta its idealization step recovers, clamped to
a monotone ladder so every bucket is non-negative; the base level L4 is
split between ``vpu_busy``/``issue_decode``/``serial_other`` using
knob-independent demand terms from the lowered trace. Because the deltas
come from re-timing with the *same* engine, the decomposition is defined
for all three engines, and for fast/batch it is deterministic to the bit.

**Bit-exactness.** Floating-point addition is not associative, so the
buckets are summed in the fixed left-to-right order of
:data:`BUCKET_ORDER`, and the final bucket (``bw_throttle``, the ladder's
own closing delta) is nudged by ULPs until the sum reproduces the total
exactly. :meth:`CycleAttribution.check` re-verifies the invariant with the
same summation order; the cross-engine tests assert it for every kernel,
VL and engine.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

import numpy as np

from repro.config import SdvConfig
from repro.engine import ENGINES
from repro.engine.batch_sim import _check_configs, _knob_axes, _walk
from repro.engine.core_model import (
    SCALAR_RESULT_TRANSFER_CYCLES,
    VECTOR_DISPATCH_CYCLES,
    VSETVL_CYCLES,
)
from repro.engine.lower import (
    LKIND_CSR,
    LKIND_VARITH,
    LKIND_VMEM,
    LoweredTrace,
    lower_trace,
)
from repro.errors import EngineError
from repro.memory.classify import ClassifiedTrace

#: fixed summation order of the buckets. The invariant "left-to-right sum
#: equals the cycle total exactly" is defined over THIS order; exporters
#: and checkers must preserve it.
BUCKET_ORDER = (
    "vpu_busy",
    "issue_decode",
    "serial_other",
    "cache_service",
    "noc",
    "dram_stall",
    "bw_throttle",
)

#: human-readable labels for profile tables.
BUCKET_LABELS = {
    "vpu_busy": "VPU busy",
    "issue_decode": "issue/decode",
    "serial_other": "other serialization",
    "cache_service": "cache service",
    "noc": "NoC hops",
    "dram_stall": "DRAM latency stall",
    "bw_throttle": "bandwidth throttle",
}


def attribution_ladder(config: SdvConfig
                       ) -> tuple[SdvConfig, SdvConfig, SdvConfig,
                                  SdvConfig, SdvConfig]:
    """The five ladder configs (L0..L4) for ``config``.

    Each level idealizes one more latency source away; levels 1+ are
    validated (level 0 is the caller's config, already validated).
    """
    l0 = config
    l1 = dataclasses.replace(
        l0, mem=dataclasses.replace(l0.mem, bw_num=1, bw_den=1))
    l2 = dataclasses.replace(
        l1, mem=dataclasses.replace(
            l1.mem, extra_latency_cycles=0, dram_service_cycles=0))
    l3 = dataclasses.replace(
        l2, noc=dataclasses.replace(l2.noc, hop_cycles=0, inject_cycles=0))
    l4 = dataclasses.replace(
        l3,
        l2=dataclasses.replace(l3.l2, access_cycles=1),
        core=dataclasses.replace(l3.core, l1_hit_cycles=1),
    )
    for level in (l1, l2, l3, l4):
        level.validate()
    return (l0, l1, l2, l3, l4)


def _closing_term(partial: float, total: float) -> float:
    """The ``r`` with ``fl(partial + r) == total`` *exactly*.

    ``total - partial`` is the obvious candidate but rounds; walk it by
    ULPs until the (single, left-to-right) addition lands on ``total``.
    """
    r = total - partial
    for _ in range(64):
        s = partial + r
        if s == total:
            return r
        r = math.nextafter(r, math.inf if s < total else -math.inf)
    raise EngineError(
        f"cannot close attribution sum: partial={partial!r} total={total!r}"
    )


def _demands(lowered: LoweredTrace) -> tuple[float, float]:
    """Knob-independent (issue_decode, vpu_busy) demand terms.

    These are pure work totals from the lowered arrays — the same numbers
    for every engine — used to split the fully idealized base level.
    """
    n_dispatch = sum(1 for k in lowered.kind
                     if k == LKIND_VARITH or k == LKIND_VMEM)
    n_csr = sum(1 for k in lowered.kind if k == LKIND_CSR)
    n_sdest = sum(1 for k, sd in zip(lowered.kind, lowered.scalar_dest)
                  if sd and k == LKIND_VARITH)
    issue = (float(lowered.sc_issue.sum())
             + n_dispatch * VECTOR_DISPATCH_CYCLES
             + n_csr * VSETVL_CYCLES
             + n_sdest * SCALAR_RESULT_TRANSFER_CYCLES)
    # memory-unit busy time at peak bandwidth: max(AGU, streaming) per
    # instruction, mirroring the engines' vm_busy term at bw 1/1
    vm_busy = np.maximum(
        lowered.vm_addr,
        np.maximum(lowered.vm_lines, lowered.vm_l2_lines + lowered.vm_txns),
    )
    vpu = float(lowered.va_occ.sum()) + float(vm_busy.sum())
    return issue, vpu


@dataclass(frozen=True)
class CycleAttribution:
    """One run's cycle total, decomposed into :data:`BUCKET_ORDER` buckets.

    ``buckets`` maps every bucket name to its cycle share; summed left to
    right in :data:`BUCKET_ORDER` the shares reproduce ``total`` exactly.
    ``ladder`` keeps the raw L0..L4 cycle counts for inspection.

    ``dram_latency_demand`` (total DRAM reads x load-to-use latency) and
    the derived ``dram_latency_hidden`` quantify the paper's mechanism:
    how many cycles of raw DRAM latency existed, and how many the machine
    overlapped away rather than stalling on.
    """

    total: float
    engine: str
    buckets: dict = field(default_factory=dict)
    ladder: tuple = ()
    dram_latency_demand: float = 0.0

    @property
    def dram_latency_hidden(self) -> float:
        """Cycles of DRAM latency hidden by overlap (demand not stalled)."""
        return max(0.0, self.dram_latency_demand - self.buckets.get(
            "dram_stall", 0.0))

    def check(self) -> None:
        """Raise :class:`EngineError` unless the sum invariant holds."""
        if set(self.buckets) != set(BUCKET_ORDER):
            raise EngineError(
                f"attribution buckets {sorted(self.buckets)} != "
                f"{sorted(BUCKET_ORDER)}"
            )
        total = 0.0
        for name in BUCKET_ORDER:
            total = total + self.buckets[name]
        if total != self.total:
            raise EngineError(
                f"attribution buckets sum to {total!r}, not {self.total!r}"
            )

    def fraction(self, name: str) -> float:
        """Bucket share of the total (0.0 on an empty run)."""
        return self.buckets[name] / self.total if self.total > 0 else 0.0

    def as_dict(self) -> dict:
        """JSON-ready view; bucket order preserved."""
        return {
            "total": self.total,
            "engine": self.engine,
            "buckets": {name: self.buckets[name] for name in BUCKET_ORDER},
            "ladder": list(self.ladder),
            "dram_latency_demand": self.dram_latency_demand,
            "dram_latency_hidden": self.dram_latency_hidden,
        }


def _from_ladder(times: tuple[float, float, float, float, float],
                 issue_demand: float, vpu_demand: float, *,
                 engine: str, dram_latency_demand: float
                 ) -> CycleAttribution:
    """Buckets from the five ladder timings.

    Clamps the ladder monotone (an idealization can only speed things up;
    tiny analytical inversions become zero-width buckets) so every bucket
    is non-negative and the pre-closing sum equals the total in exact
    arithmetic.
    """
    t0, t1, t2, t3, t4 = times
    s1 = min(t1, t0)
    s2 = min(t2, s1)
    s3 = min(t3, s2)
    s4 = min(t4, s3)

    vpu_busy = min(vpu_demand, s4)
    issue_decode = min(issue_demand, s4 - vpu_busy)
    serial_other = max(0.0, s4 - vpu_busy - issue_decode)
    cache_service = s3 - s4
    noc = s2 - s3
    dram_stall = s1 - s2
    # left-to-right in BUCKET_ORDER; bw_throttle closes the sum exactly
    partial = vpu_busy
    partial = partial + issue_decode
    partial = partial + serial_other
    partial = partial + cache_service
    partial = partial + noc
    partial = partial + dram_stall
    bw_throttle = _closing_term(partial, t0)

    att = CycleAttribution(
        total=t0,
        engine=engine,
        buckets={
            "vpu_busy": vpu_busy,
            "issue_decode": issue_decode,
            "serial_other": serial_other,
            "cache_service": cache_service,
            "noc": noc,
            "dram_stall": dram_stall,
            "bw_throttle": bw_throttle,
        },
        ladder=times,
        dram_latency_demand=dram_latency_demand,
    )
    att.check()
    return att


def _empty(engine: str) -> CycleAttribution:
    return CycleAttribution(
        total=0.0, engine=engine,
        buckets={name: 0.0 for name in BUCKET_ORDER},
        ladder=(0.0,) * 5,
    )


def attribute(ct: ClassifiedTrace, *, engine: str = "fast",
              lowered: LoweredTrace | None = None) -> CycleAttribution:
    """Attribute one classified trace's cycles at its bound config.

    Re-times ``ct`` with ``engine`` at each ladder level (the trace's
    classification only depends on cache *geometry*, which no level
    touches, so re-binding the config is sound). Works for all three
    engines; ``lowered`` (when the caller has it cached) skips one
    re-lowering for the demand terms.
    """
    if engine not in ENGINES:
        raise EngineError(
            f"unknown engine '{engine}' (choose from {sorted(ENGINES)})")
    if ct.rows.shape[0] == 0:
        return _empty(engine)
    fn = ENGINES[engine]
    times = tuple(
        float(fn(dataclasses.replace(ct, config=cfg)).cycles)
        for cfg in attribution_ladder(ct.config)
    )
    if lowered is None:
        lowered = lower_trace(ct)
    issue_demand, vpu_demand = _demands(lowered)
    return _from_ladder(
        times, issue_demand, vpu_demand, engine=engine,
        dram_latency_demand=lowered.total_dram_reads * ct.config.dram_latency,
    )


def attribute_many(ct: ClassifiedTrace, configs, *,
                   lowered: LoweredTrace | None = None
                   ) -> list[CycleAttribution]:
    """Vectorized attribution of one trace at many knob settings.

    The sweep counterpart of :func:`attribute`: the classified trace is
    lowered **once** and every ladder rung of every config is timed in a
    **single** batch walk with a combined axis of ``2K + 3`` columns —
    L0 and L1 per config (actual knobs / limiter at peak), then the three
    knob-free idealizations L2 (zero DRAM latency), L3 (plus a
    zero-latency NoC) and L4 (plus 1-cycle caches). L3/L4 reuse the same
    lowered arrays via the walk's ``l2_lat`` axis: the NoC and cache
    latencies enter the timing model only through the L2 hit latency, so
    idealizing them is a per-column latency substitution, not a
    re-lowering. Total work for K sweep points: one walk, not 5K runs.

    Bit-identical to ``attribute(engine="batch")`` (and therefore to
    ``engine="fast"``) at each config — the agreement tests pin it.
    """
    configs = list(configs)
    if lowered is None:
        lowered = lower_trace(ct)
    _check_configs(lowered, configs)
    if lowered.n == 0:
        return [_empty("batch") for _ in configs]

    K = len(configs)
    lat, den, num = _knob_axes(lowered, configs)
    ones = np.ones(K + 3)
    l2_base = lowered.base.l2_hit_latency
    ladder = attribution_ladder(lowered.base_key)
    # L2..L4 collapse DRAM onto the (progressively idealized) L2: their
    # dram_latency equals their l2_hit_latency, via the same float path
    # the ladder configs themselves compute
    ideal = [(cfg.dram_latency, cfg.l2_hit_latency) for cfg in ladder[2:]]
    lat_all = np.concatenate([lat, lat, [dl for dl, _ in ideal]])
    den_all = np.concatenate([den, ones])
    num_all = np.concatenate([num, ones])
    l2_all = np.concatenate([np.full(2 * K + 1, l2_base),
                             [l2 for _, l2 in ideal[1:]]])
    cyc = _walk(lowered, lat_all, den_all, num_all, l2_lat=l2_all)["cycles"]
    t2 = float(cyc[2 * K])
    t3 = float(cyc[2 * K + 1])
    t4 = float(cyc[2 * K + 2])

    issue_demand, vpu_demand = _demands(lowered)
    return [
        _from_ladder(
            (float(cyc[k]), float(cyc[K + k]), t2, t3, t4),
            issue_demand, vpu_demand, engine="batch",
            dram_latency_demand=(lowered.total_dram_reads
                                 * configs[k].dram_latency),
        )
        for k in range(len(configs))
    ]
