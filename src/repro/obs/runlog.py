"""Structured JSONL run log with cross-process trace-context propagation.

A paper sweep fans trace generation out across worker processes; anything
those workers print is interleaved garbage at best and lost at worst. The
run log replaces prints with schema-versioned event *records* — plain
dicts, picklable, JSON-serializable — collected per process and merged in
the parent, so one sweep produces one ordered log.

Mechanics mirror :mod:`repro.obs.spans`: a process-wide :class:`RunLog`
that starts *disabled* (an ``event()`` call then costs one attribute check
and records nothing), worker processes build their own local log carrying
the parent's ``trace_id`` (shipped through the task tuple), and the parent
``adopt()``-s the workers' records. ``merged_records`` orders the combined
stream by ``(ts, pid, seq)`` — wall-clock first, then a per-process
sequence number that breaks same-timestamp ties deterministically.

The on-disk form is JSON Lines: a header line carrying the schema tag,
then one line per record. :func:`load_and_validate` hard-fails on drift,
and ``python -m repro.obs.check`` recognizes the header (rule O005).
"""

from __future__ import annotations

import json
import os
import time
import uuid
from contextlib import contextmanager
from pathlib import Path

#: bump on any backwards-incompatible run-log layout change.
RUNLOG_SCHEMA = "repro.runlog/1"

#: record severity levels, least to most severe.
LEVELS = ("debug", "info", "warn", "error")

#: keys every record line must carry (validator contract).
_RECORD_REQUIRED = ("ts", "pid", "seq", "name", "level")


def new_trace_id() -> str:
    """Fresh 16-hex-digit trace id shared by one command's processes."""
    return uuid.uuid4().hex[:16]


class RunLog:
    """Collects ordered event records; one per process.

    Workers construct their own (``RunLog(enabled=..., trace_id=...)``)
    with the parent's trace id so every record of one sweep — whichever
    process emitted it — carries the same correlation key.
    """

    def __init__(self, *, enabled: bool = True,
                 trace_id: str | None = None) -> None:
        self.enabled = enabled
        self.trace_id = trace_id or new_trace_id()
        self.records: list[dict] = []
        self._seq = 0
        self._ctx: list[str] = []

    def event(self, name: str, *, level: str = "info",
              **attrs) -> dict | None:
        """Record one event; returns the record (or ``None`` when the log
        is disabled, so callers never pay for attr assembly)."""
        if not self.enabled:
            return None
        if level not in LEVELS:
            raise ValueError(f"unknown run-log level {level!r}")
        rec = {
            "ts": time.time(),
            "pid": os.getpid(),
            "seq": self._seq,
            "trace": self.trace_id,
            "name": name,
            "level": level,
        }
        self._seq += 1
        if self._ctx:
            rec["ctx"] = "/".join(self._ctx)
        if attrs:
            rec["attrs"] = attrs
        self.records.append(rec)
        return rec

    @contextmanager
    def context(self, name: str, **attrs):
        """Scope records under ``name``: emits ``<name>.begin`` /
        ``<name>.end`` events and prefixes the ``ctx`` path of everything
        recorded inside."""
        if not self.enabled:
            yield
            return
        self.event(f"{name}.begin", **attrs)
        self._ctx.append(name)
        try:
            yield
        finally:
            self._ctx.pop()
            self.event(f"{name}.end")

    def adopt(self, records: list[dict]) -> None:
        """Fold records emitted elsewhere (a worker process) into this
        log; their timestamps, pids and seqs are preserved."""
        if not self.enabled:
            return
        self.records.extend(records)

    def merged_records(self) -> list[dict]:
        """All records in one deterministic order: wall clock, then pid,
        then the per-process sequence number (tie-break within one
        clock quantum)."""
        return sorted(self.records,
                      key=lambda r: (r["ts"], r["pid"], r["seq"]))

    def clear(self) -> None:
        self.records.clear()
        self._seq = 0
        self._ctx.clear()

    def reset_context(self) -> None:
        """Drop any dangling context scopes (e.g. a figure aborted by an
        exception) without discarding recorded events."""
        self._ctx.clear()


#: process-wide run log, disabled by default (CLI enables for
#: ``--emit-runlog``; workers build their own with the parent's trace id).
_RUNLOG = RunLog(enabled=False)


def get_runlog() -> RunLog:
    """The process-wide run log."""
    return _RUNLOG


def set_logging(enabled: bool, *, trace_id: str | None = None) -> RunLog:
    """Enable/disable the process-wide run log; returns it (cleared and
    re-keyed when switching on, so an export contains exactly one
    command's records under one trace id)."""
    if enabled and not _RUNLOG.enabled:
        _RUNLOG.clear()
        _RUNLOG.trace_id = trace_id or new_trace_id()
    _RUNLOG.enabled = enabled
    return _RUNLOG


def build_header(log: RunLog, **meta) -> dict:
    """The JSONL header line: schema tag, trace id, record count."""
    header = {
        "schema": RUNLOG_SCHEMA,
        "trace": log.trace_id,
        "created_unix": time.time(),
        "records": len(log.records),
    }
    header.update(meta)
    return header


def write_runlog(path, log: RunLog, **meta) -> Path:
    """Validate and write one merged JSONL run log; returns the path."""
    header = build_header(log, **meta)
    lines = [header] + log.merged_records()
    validate_runlog_lines(lines)
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(json.dumps(line) + "\n")
    return p


def validate_runlog_lines(lines: list[dict]) -> None:
    """Raise ``ValueError`` unless ``lines`` form a valid run log.

    Checks: a schema-tagged header first, the advertised record count,
    every record's required keys/types, known severity levels, and one
    trace id across header and records (the cross-process correlation
    contract).
    """
    if not lines:
        raise ValueError("run log is empty (missing header line)")
    header = lines[0]
    if not isinstance(header, dict):
        raise ValueError("run-log header must be a JSON object")
    if header.get("schema") != RUNLOG_SCHEMA:
        raise ValueError(
            f"unsupported run-log schema {header.get('schema')!r} "
            f"(expected {RUNLOG_SCHEMA})"
        )
    trace = header.get("trace")
    if not isinstance(trace, str) or not trace:
        raise ValueError("run-log header 'trace' must be a non-empty string")
    records = lines[1:]
    if header.get("records") != len(records):
        raise ValueError(
            f"run-log header advertises {header.get('records')!r} records, "
            f"file has {len(records)}"
        )
    last_key = None
    for i, rec in enumerate(records):
        where = f"record[{i}]"
        if not isinstance(rec, dict):
            raise ValueError(f"{where} is not an object")
        for key in _RECORD_REQUIRED:
            if key not in rec:
                raise ValueError(f"{where} missing required key {key!r}")
        if not isinstance(rec["ts"], (int, float)):
            raise ValueError(f"{where} ts must be a number")
        if not isinstance(rec["pid"], int) or not isinstance(rec["seq"], int):
            raise ValueError(f"{where} pid/seq must be integers")
        if not isinstance(rec["name"], str) or not rec["name"]:
            raise ValueError(f"{where} name must be a non-empty string")
        if rec["level"] not in LEVELS:
            raise ValueError(f"{where} has unknown level {rec['level']!r}")
        if rec.get("trace") != trace:
            raise ValueError(
                f"{where} trace {rec.get('trace')!r} does not match the "
                f"header trace {trace!r}"
            )
        key = (rec["ts"], rec["pid"], rec["seq"])
        if last_key is not None and key < last_key:
            raise ValueError(f"{where} out of (ts, pid, seq) order")
        last_key = key


def load_and_validate(path) -> list[dict]:
    """Read a JSONL run log and validate it; returns the parsed lines
    (header first)."""
    lines = []
    with Path(path).open(encoding="utf-8") as fh:
        for n, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                lines.append(json.loads(raw))
            except json.JSONDecodeError as e:
                raise ValueError(f"line {n} is not valid JSON: {e}") from e
    validate_runlog_lines(lines)
    return lines
