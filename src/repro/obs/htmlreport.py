"""Self-contained HTML run dashboard (``repro-sdv dash``).

One command turns the run artifacts the harness already emits — run
manifests (``--emit-json``), the structured JSONL run log
(``--emit-runlog``) and the perf ledger — into a single static HTML page:
KPI tiles, per-run cycle-attribution tables with magnitude bars, engine
introspection counters, a per-process run-log timeline, and one trend
sparkline per ledger series with its regression verdict.

The page is **fully self-contained**: inline CSS, inline SVG marks, no
script tags, no external fetches — it renders from a CI artifact store or
an ``file://`` open with nothing else present. Dark mode is selected via
``prefers-color-scheme`` from the same palette (not an automatic flip).

The first line after the doctype carries the ``repro.dash/1`` marker
comment; :func:`validate_dashboard` (and ``repro.obs.check`` rule O007)
verify the marker, the document shape, and the self-containment contract.
"""

from __future__ import annotations

import html
import time
from pathlib import Path

#: bump on any backwards-incompatible dashboard layout change.
DASH_SCHEMA = "repro.dash/1"

#: the sniffable marker embedded right after the doctype.
DASH_MARKER = f"<!-- {DASH_SCHEMA} -->"

#: strings that would make the page non-self-contained (validator contract).
_FORBIDDEN = ("<script", "<link", "src=\"http", "src='http",
              "href=\"http", "href='http", "@import", "url(http")

# ------------------------------------------------------------------ palette
#
# Reference data-viz palette: single-series charts use categorical slot 1
# (blue) — validated for both surfaces (lightness band, chroma floor,
# >=3:1 contrast). Status colors are reserved for verdicts and always ship
# with a text label, never color alone. Text wears ink tokens, never the
# series color.

_CSS = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series: #2a78d6;
  --good: #0ca30c; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --series: #3987e5;
    --good: #0ca30c; --critical: #d03b3b;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
h2 { font-size: 15px; font-weight: 600; margin: 28px 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 150px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; }
.tile .note { color: var(--muted); font-size: 12px; }
.card {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px; margin: 0 0 14px;
}
.card .title { font-weight: 600; margin-bottom: 2px; }
.card .meta { color: var(--muted); font-size: 12px; margin-bottom: 8px; }
table { border-collapse: collapse; width: 100%; }
th, td {
  text-align: right; padding: 4px 10px; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--ink-2); font-weight: 500; font-size: 12px; }
th:first-child, td:first-child { text-align: left; }
tr:last-child td { border-bottom: none; }
tr:hover td { background: color-mix(in srgb, var(--series) 7%, transparent); }
.badge { font-size: 12px; font-weight: 600; white-space: nowrap; }
.badge.ok { color: var(--good); }
.badge.bad { color: var(--critical); }
.badge.na { color: var(--muted); }
.spark-row { display: flex; flex-wrap: wrap; gap: 12px; }
svg text { font: 11px system-ui, sans-serif; fill: var(--muted); }
details summary { color: var(--ink-2); cursor: pointer; font-size: 12px; }
.note { color: var(--muted); font-size: 12px; }
"""


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float) -> str:
    """Compact magnitude: 1,284 / 12.9k / 4.2M."""
    v = float(value)
    a = abs(v)
    if a >= 1e9:
        return f"{v / 1e9:.1f}G"
    if a >= 1e6:
        return f"{v / 1e6:.1f}M"
    if a >= 1e4:
        return f"{v / 1e3:.1f}k"
    if a == int(a):
        return f"{int(v):,}"
    return f"{v:.3g}"


# --------------------------------------------------------------- SVG marks


def _hbar(frac: float, *, width: int = 180, height: int = 12,
          tooltip: str = "") -> str:
    """One horizontal magnitude bar: series hue, 4px rounded data end,
    square at the baseline, hairline axis at x=0."""
    w = max(0.0, min(1.0, frac)) * (width - 2)
    r = min(4.0, w / 2)
    # square left (baseline) edge, rounded right (data) end
    path = (f"M1 0 H{1 + w - r:.1f} Q{1 + w:.1f} 0 {1 + w:.1f} {r:.1f} "
            f"V{height - r:.1f} Q{1 + w:.1f} {height} {1 + w - r:.1f} "
            f"{height} H1 Z")
    tip = f"<title>{_esc(tooltip)}</title>" if tooltip else ""
    return (f'<svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" role="img">{tip}'
            f'<line x1="1" y1="0" x2="1" y2="{height}" '
            f'stroke="var(--axis)" stroke-width="1"/>'
            f'<path d="{path}" fill="var(--series)"/></svg>')


def _sparkline(values: list[float], *, width: int = 220, height: int = 44,
               tooltip: str = "") -> str:
    """One single-series trend sparkline: 2px line, end dot with a 2px
    surface ring. Values table rides in the enclosing markup (tooltips
    enhance, never gate)."""
    if not values:
        return ""
    pad = 6.0
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)
    xs = [pad + (width - 2 * pad) * (i / (n - 1) if n > 1 else 0.5)
          for i in range(n)]
    ys = [height - pad - (height - 2 * pad) * ((v - lo) / span)
          for v in values]
    pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    tip = f"<title>{_esc(tooltip)}</title>" if tooltip else ""
    return (f'<svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" role="img">{tip}'
            f'<line x1="{pad}" y1="{height - pad:.1f}" '
            f'x2="{width - pad}" y2="{height - pad:.1f}" '
            f'stroke="var(--grid)" stroke-width="1"/>'
            f'<polyline points="{pts}" fill="none" stroke="var(--series)" '
            f'stroke-width="2" stroke-linejoin="round" '
            f'stroke-linecap="round"/>'
            f'<circle cx="{xs[-1]:.1f}" cy="{ys[-1]:.1f}" r="4" '
            f'fill="var(--series)" stroke="var(--surface)" '
            f'stroke-width="2"/></svg>')


#: runlog timeline cap — the page stays light even for heartbeat-heavy
#: logs; the cap is always stated in the rendered output, never silent.
_TIMELINE_MAX = 400


def _timeline(records: list[dict], *, width: int = 720) -> str:
    """Per-process event timeline: one lane per pid, one dot per record
    at its wall-time offset, native ``<title>`` tooltips."""
    if not records:
        return '<p class="note">(run log has no records)</p>'
    shown = records[:_TIMELINE_MAX]
    t0 = min(r["ts"] for r in shown)
    t1 = max(r["ts"] for r in shown)
    span = (t1 - t0) or 1.0
    pids = sorted({r["pid"] for r in shown})
    lane_h, pad_l, pad_r, pad_t = 22, 70, 14, 8
    h = pad_t * 2 + lane_h * len(pids) + 16
    plot_w = width - pad_l - pad_r
    parts = [f'<svg width="{width}" height="{h}" '
             f'viewBox="0 0 {width} {h}" role="img">']
    for k, pid in enumerate(pids):
        y = pad_t + lane_h * k + lane_h / 2
        parts.append(f'<line x1="{pad_l}" y1="{y:.1f}" x2="{width - pad_r}" '
                     f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>')
        parts.append(f'<text x="{pad_l - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">pid {pid}</text>')
    for r in shown:
        y = pad_t + lane_h * pids.index(r["pid"]) + lane_h / 2
        x = pad_l + plot_w * ((r["ts"] - t0) / span)
        tip = (f"{r['name']} @ +{r['ts'] - t0:.3f}s (pid {r['pid']}, "
               f"{r['level']})")
        parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" '
                     f'fill="var(--series)" stroke="var(--surface)" '
                     f'stroke-width="2"><title>{_esc(tip)}</title></circle>')
    y_ax = pad_t + lane_h * len(pids) + 6
    parts.append(f'<text x="{pad_l}" y="{y_ax + 8}">+0s</text>')
    parts.append(f'<text x="{width - pad_r}" y="{y_ax + 8}" '
                 f'text-anchor="end">+{span:.2f}s</text>')
    parts.append("</svg>")
    if len(records) > len(shown):
        parts.append(f'<p class="note">showing the first {len(shown)} of '
                     f'{len(records)} records (full log in the JSONL '
                     f'artifact)</p>')
    return "".join(parts)


# ------------------------------------------------------------- sections


def _kpi_tiles(tiles: list[tuple[str, str, str]]) -> str:
    out = ['<div class="tiles">']
    for label, value, note in tiles:
        out.append(f'<div class="tile"><div class="label">{_esc(label)}'
                   f'</div><div class="value">{_esc(value)}</div>'
                   f'<div class="note">{_esc(note)}</div></div>')
    out.append("</div>")
    return "".join(out)


def _manifest_section(manifest: dict, source: str) -> str:
    runs = manifest["runs"]
    max_cycles = max(r["cycles"] for r in runs) or 1
    bucket_names: list[str] = []
    for r in runs:
        for b in (r.get("buckets") or {}):
            if b not in bucket_names:
                bucket_names.append(b)
    head = "".join(f"<th>{_esc(b)}</th>" for b in bucket_names)
    rows = []
    for r in runs:
        buckets = r.get("buckets") or {}
        cells = "".join(f"<td>{_fmt(buckets[b]) if b in buckets else '–'}"
                        f"</td>" for b in bucket_names)
        bar = _hbar(r["cycles"] / max_cycles,
                    tooltip=f"{r['impl']}: {r['cycles']:,.0f} cycles")
        rows.append(f"<tr><td>{_esc(r['impl'])}</td>"
                    f"<td>{_fmt(r['cycles'])}</td>"
                    f'<td style="text-align:left">{bar}</td>{cells}</tr>')
    meta = (f"engine {manifest['engine']}"
            + (f" · scale {manifest['scale']}" if "scale" in manifest else "")
            + f" · config {manifest['config_hash'][:8]}"
            + (f" · rev {manifest['git_rev'][:8]}"
               if manifest.get("git_rev") else ""))
    return (f'<div class="card"><div class="title">'
            f'{_esc(manifest["kernel"])}</div>'
            f'<div class="meta">{_esc(meta)} · {_esc(source)}</div>'
            f'<table><tr><th>impl</th><th>cycles</th><th></th>{head}</tr>'
            f'{"".join(rows)}</table></div>')


def _engine_stats_section(snapshots: list[tuple[str, dict]]) -> str:
    from repro.obs.engine_stats import EngineStats

    stats = EngineStats()
    for _, snap in snapshots:
        stats.merge(snap)
    if not (stats.counters or stats.highs):
        return ""
    rows = []
    for name in sorted(stats.counters):
        rows.append(f"<tr><td>{_esc(name)}</td>"
                    f"<td>{stats.counters[name]:,.0f}</td></tr>")
    for name in sorted(stats.highs):
        rows.append(f"<tr><td>{_esc(name)} (max)</td>"
                    f"<td>{stats.highs[name]:,.0f}</td></tr>")
    for name, value in sorted(stats.ratios().items()):
        rows.append(f"<tr><td>{_esc(name)}</td><td>{value:.3f}</td></tr>")
    srcs = ", ".join(sorted({s for s, _ in snapshots}))
    return (f'<h2>Engine introspection</h2><div class="card">'
            f'<div class="meta">merged from {_esc(srcs)}</div>'
            f'<table><tr><th>counter</th><th>value</th></tr>'
            f'{"".join(rows)}</table></div>')


def _verdict_badge(verdict) -> str:
    if verdict.status == "regression":
        return ('<span class="badge bad">&#x2715; REGRESSED</span>')
    if verdict.status == "insufficient":
        return ('<span class="badge na">&#x25CB; n/a '
                f'({verdict.samples} samples)</span>')
    return '<span class="badge ok">&#x2713; ok</span>'


def _ledger_section(records: list[dict]) -> str:
    from repro.obs.ledger import perf_diff, series

    results = perf_diff(records)
    if not results:
        return '<p class="note">(ledger has no series)</p>'
    cards = []
    for (bench, metric, scale), verdict in results:
        values = series(records, bench, metric, scale)
        tail = values[-20:]
        tip = (f"{bench}:{metric} [{scale}] — last {len(tail)} of "
               f"{len(values)}: min {min(tail):.3g}, "
               f"median {sorted(tail)[len(tail) // 2]:.3g}, "
               f"max {max(tail):.3g}")
        table = "".join(f"<tr><td>{i + 1}</td><td>{v:.4g}</td></tr>"
                        for i, v in enumerate(tail))
        cards.append(
            f'<div class="tile"><div class="label">'
            f'{_esc(bench)}:{_esc(metric)} [{_esc(scale)}]</div>'
            f'<div class="value">{_esc(f"{verdict.value:.3g}")}</div>'
            f'{_verdict_badge(verdict)}<div>'
            f'{_sparkline(tail, tooltip=tip)}</div>'
            f'<div class="note">{_esc(verdict.reason)}</div>'
            f'<details><summary>values</summary><table>'
            f'<tr><th>#</th><th>value</th></tr>{table}</table>'
            f'</details></div>')
    return f'<div class="spark-row">{"".join(cards)}</div>'


def _runlog_table(records: list[dict], *, limit: int = 40) -> str:
    if not records:
        return ""
    t0 = records[0]["ts"]
    rows = []
    for r in records[:limit]:
        attrs = r.get("attrs") or {}
        detail = ", ".join(f"{k}={v}" for k, v in attrs.items())
        rows.append(f"<tr><td>+{r['ts'] - t0:.3f}s</td>"
                    f"<td>{r['pid']}</td><td>{_esc(r['name'])}</td>"
                    f"<td>{_esc(r['level'])}</td>"
                    f'<td style="text-align:left">{_esc(detail)}</td></tr>')
    more = (f'<p class="note">first {limit} of {len(records)} records</p>'
            if len(records) > limit else "")
    return (f'<details><summary>event table</summary><table>'
            f'<tr><th>t</th><th>pid</th><th>event</th><th>level</th>'
            f'<th>attrs</th></tr>{"".join(rows)}</table></details>{more}')


# --------------------------------------------------------------- assembly


def render_dashboard(*, manifests: list[tuple[str, dict]] | None = None,
                     runlog: list[dict] | None = None,
                     ledger: list[dict] | None = None,
                     title: str | None = None) -> str:
    """Render the dashboard HTML from already-loaded artifacts.

    ``manifests`` is ``[(source_name, manifest_dict), ...]``; ``runlog``
    is the validated JSONL line list (header first); ``ledger`` is the
    validated record list.
    """
    manifests = manifests or []
    ledger = ledger or []
    log_header = runlog[0] if runlog else None
    log_records = runlog[1:] if runlog else []

    tiles = []
    if manifests:
        total_runs = sum(len(m["runs"]) for _, m in manifests)
        tiles.append(("manifests", str(len(manifests)),
                      f"{total_runs} timed runs"))
    if log_records is not None and log_header is not None:
        pids = {r["pid"] for r in log_records}
        tiles.append(("run-log records", str(len(log_records)),
                      f"{len(pids)} process(es), "
                      f"trace {log_header.get('trace', '?')[:8]}"))
    if ledger:
        from repro.obs.ledger import perf_diff

        results = perf_diff(ledger)
        bad = sum(1 for _, v in results if v.is_regression)
        tiles.append(("ledger series", str(len(results)),
                      f"{bad} regression(s)" if bad
                      else "no regressions"))
    if not tiles:
        tiles.append(("artifacts", "0", "pass --manifest/--runlog/--ledger"))

    body = [f"<h1>{_esc(title or 'repro-sdv run dashboard')}</h1>",
            f'<p class="sub">generated '
            f'{time.strftime("%Y-%m-%d %H:%M:%S")} · schema '
            f'{DASH_SCHEMA}</p>',
            _kpi_tiles(tiles)]

    if manifests:
        body.append("<h2>Cycle attribution</h2>")
        for source, m in manifests:
            body.append(_manifest_section(m, source))
        es = [(src, m["engine_stats"]) for src, m in manifests
              if isinstance(m.get("engine_stats"), dict)]
        if es:
            body.append(_engine_stats_section(es))
    if runlog:
        body.append("<h2>Run log</h2>")
        body.append(f'<div class="card">{_timeline(log_records)}'
                    f'{_runlog_table(log_records)}</div>')
    if ledger:
        body.append("<h2>Perf ledger trends</h2>")
        body.append(_ledger_section(ledger))

    return (f"<!DOCTYPE html>\n{DASH_MARKER}\n"
            f'<html lang="en"><head><meta charset="utf-8">'
            f'<meta name="viewport" '
            f'content="width=device-width, initial-scale=1">'
            f"<title>{_esc(title or 'repro-sdv dashboard')}</title>"
            f"<style>{_CSS}</style></head><body>"
            f'{"".join(body)}</body></html>\n')


def build_dashboard(path, *, manifests=(), runlog=None, ledger=None,
                    title: str | None = None) -> Path:
    """Load + validate the artifacts, render, validate, write. Returns
    the output path."""
    import json

    from repro.obs import manifest as manifest_mod
    from repro.obs import runlog as runlog_mod
    from repro.obs.ledger import load_and_validate as load_ledger

    loaded = []
    for mpath in manifests:
        data = json.loads(Path(mpath).read_text(encoding="utf-8"))
        # sweep JSON exports carry their manifest under a "meta" key
        if "manifest" in data.get("meta", {}):
            data = data["meta"]["manifest"]
        manifest_mod.validate_manifest(data)
        loaded.append((Path(mpath).name, data))
    log_lines = runlog_mod.load_and_validate(runlog) if runlog else None
    ledger_recs = load_ledger(ledger) if ledger else None
    text = render_dashboard(manifests=loaded, runlog=log_lines,
                            ledger=ledger_recs, title=title)
    validate_dashboard(text)
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(text, encoding="utf-8")
    return p


def validate_dashboard(text: str) -> None:
    """Raise ``ValueError`` unless ``text`` is a well-formed,
    self-contained dashboard page (``repro.obs.check`` rule O007)."""
    if not text.lstrip().startswith("<!DOCTYPE html>"):
        raise ValueError("dashboard must start with <!DOCTYPE html>")
    if DASH_MARKER not in text[:256]:
        raise ValueError(
            f"dashboard is missing the {DASH_MARKER} marker comment")
    if "</html>" not in text:
        raise ValueError("dashboard is truncated (no closing </html>)")
    lower = text.lower()
    for needle in _FORBIDDEN:
        if needle in lower:
            raise ValueError(
                f"dashboard is not self-contained: found {needle!r} "
                "(no scripts, stylesheets links, or external fetches)")
