"""Figure/table extraction from sweep results.

Maps :class:`repro.core.measurements.SweepResult` onto the paper's
presentation:

* **Figure 3** — per kernel, execution time vs extra latency, one series
  per implementation (scalar in blue, VLs in the red gradient);
* **Figure 4** — per kernel, each implementation's series normalized to its
  own 0-extra-latency run (the green→red slowdown heat table);
* **Figure 5** — per kernel, each implementation's series over the
  bandwidth sweep normalized to its own 1 B/cycle run;
* the **headline numbers** of Section 4.1 (SpMV slowdowns at +32/+1024) and
  the **plateau** analysis of Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.measurements import SweepResult
from repro.errors import ReproError


def figure3_series(result: SweepResult) -> dict[str, list[float]]:
    """impl -> absolute cycles across the latency sweep points."""
    if result.axis != "latency":
        raise ReproError("figure3_series needs a latency sweep")
    return {impl: result.series(impl) for impl in result.impls}


def figure4_table(result: SweepResult) -> dict[str, list[float]]:
    """impl -> slowdowns normalized to that impl's 0-extra-latency run."""
    if result.axis != "latency":
        raise ReproError("figure4_table needs a latency sweep")
    if 0 not in result.points:
        raise ReproError("figure4 normalization needs the 0-latency point")
    return {
        impl: result.normalized_series(impl, baseline_point=0)
        for impl in result.impls
    }


def figure5_series(result: SweepResult) -> dict[str, list[float]]:
    """impl -> times normalized to that impl's 1 B/cycle run (lower=better)."""
    if result.axis != "bandwidth":
        raise ReproError("figure5_series needs a bandwidth sweep")
    base_point = min(result.points)
    return {
        impl: result.normalized_series(impl, baseline_point=base_point)
        for impl in result.impls
    }


@dataclass(frozen=True)
class HeadlineNumbers:
    """The SpMV slowdowns quoted in Section 4.1 of the paper."""

    scalar_at_32: float
    vl256_at_32: float
    scalar_at_1024: float
    vl256_at_1024: float

    #: values printed in the paper, for side-by-side reporting
    PAPER = (1.22, 1.05, 8.78, 3.39)

    def rows(self) -> list[tuple[str, float, float]]:
        p = self.PAPER
        return [
            ("scalar slowdown @ +32", self.scalar_at_32, p[0]),
            ("vl256 slowdown @ +32", self.vl256_at_32, p[1]),
            ("scalar slowdown @ +1024", self.scalar_at_1024, p[2]),
            ("vl256 slowdown @ +1024", self.vl256_at_1024, p[3]),
        ]


def headline_numbers(spmv_latency: SweepResult) -> HeadlineNumbers:
    """Extract the Section 4.1 quoted numbers from an SpMV latency sweep."""
    table = figure4_table(spmv_latency)
    points = spmv_latency.points

    def at(impl: str, lat: int) -> float:
        return table[impl][points.index(lat)]

    return HeadlineNumbers(
        scalar_at_32=at("scalar", 32),
        vl256_at_32=at("vl256", 32),
        scalar_at_1024=at("scalar", 1024),
        vl256_at_1024=at("vl256", 1024),
    )


def plateau_bandwidth(result: SweepResult, impl: str, *,
                      threshold: float = 0.05) -> int:
    """Smallest bandwidth (B/cycle) beyond which ``impl`` improves < 5%.

    Section 4.2's observation: the scalar plateau is at 1-2 B/cycle, VL=8 at
    2-4, while VL=256 keeps benefiting up to 32-64.
    """
    if result.axis != "bandwidth":
        raise ReproError("plateau analysis needs a bandwidth sweep")
    series = result.series(impl)
    points = result.points
    for i in range(len(points) - 1):
        cur, nxt = series[i], series[i + 1]
        if cur <= 0:
            continue
        improvement = (cur - nxt) / cur
        if improvement < threshold:
            return points[i]
    return points[-1]
