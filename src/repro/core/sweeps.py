"""The paper's three sweeps.

Efficiency structure (what makes paper-scale sweeps tractable):

* the trace of one (kernel, implementation) pair is generated **once** —
  the Latency Controller and Bandwidth Limiter knobs do not change what the
  program does, only how long it takes (exactly like the FPGA);
* the cache classification of that trace is computed **once** (cache
  geometry is knob-independent) and cached on the trace;
* each sweep point is then a cheap re-timing pass.

The default sweep axes follow Section 4: extra latency 0..1024 cycles,
bandwidth 1..64 B/cycle in powers of two, VL in {8,...,256} plus scalar.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.config import SdvConfig
from repro.core.measurements import Measurement, SweepResult
from repro.errors import KernelError
from repro.kernels.base import KernelSpec
from repro.soc.sdv import FpgaSdv
from repro.trace.events import TraceBuffer

#: Figure 3/4 x-axis: extra latency cycles added by the Latency Controller.
DEFAULT_LATENCIES: tuple[int, ...] = (0, 32, 64, 128, 256, 512, 1024)

#: Figure 5 x-axis: Bandwidth Limiter setting in bytes/cycle.
DEFAULT_BANDWIDTHS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

#: vector lengths evaluated in the paper (doubles per register).
DEFAULT_VLS: tuple[int, ...] = (8, 16, 32, 64, 128, 256)


def impl_label(vl: int | None) -> str:
    """Column label: None -> 'scalar', 128 -> 'vl128'."""
    return "scalar" if vl is None else f"vl{vl}"


def run_implementation(
    spec: KernelSpec,
    workload,
    vl: int | None,
    *,
    config: SdvConfig | None = None,
    verify: bool = True,
) -> tuple[FpgaSdv, TraceBuffer]:
    """Build one implementation's trace on a fresh SDV.

    Returns the SDV (holding the workload's memory image configuration) and
    the sealed trace, ready to be re-timed at many knob settings.
    """
    sdv = FpgaSdv(config)
    if vl is not None:
        sdv.configure(max_vl=vl)
    session = sdv.session()
    builder = spec.vector if vl is not None else spec.scalar
    output = builder(session, workload)
    trace = session.seal()
    if verify:
        ref = spec.reference(workload)
        if not spec.check(output, ref):
            raise KernelError(
                f"{spec.name}/{impl_label(vl)} produced a wrong result"
            )
    return sdv, trace


def _impls(vls: Sequence[int], include_scalar: bool) -> list[int | None]:
    out: list[int | None] = [None] if include_scalar else []
    out.extend(vls)
    return out


def latency_sweep(
    spec: KernelSpec,
    workload,
    *,
    latencies: Iterable[int] = DEFAULT_LATENCIES,
    vls: Sequence[int] = DEFAULT_VLS,
    include_scalar: bool = True,
    config: SdvConfig | None = None,
    verify: bool = True,
    keep_reports: bool = False,
) -> SweepResult:
    """Section 4.1: execution time vs. extra memory latency."""
    latencies = list(latencies)
    impls = _impls(vls, include_scalar)
    result = SweepResult(
        kernel=spec.name, axis="latency", points=latencies,
        impls=[impl_label(v) for v in impls],
    )
    for vl in impls:
        sdv, trace = run_implementation(spec, workload, vl, config=config,
                                        verify=verify)
        for lat in latencies:
            sdv.configure(extra_latency=lat)
            report = sdv.time(trace)
            result.add(Measurement(
                kernel=spec.name, impl=impl_label(vl), extra_latency=lat,
                bandwidth_bpc=int(sdv.bandwidth_bpc), cycles=report.cycles,
                report=report if keep_reports else None,
            ))
    return result


def bandwidth_sweep(
    spec: KernelSpec,
    workload,
    *,
    bandwidths: Iterable[int] = DEFAULT_BANDWIDTHS,
    vls: Sequence[int] = DEFAULT_VLS,
    include_scalar: bool = True,
    config: SdvConfig | None = None,
    verify: bool = True,
    keep_reports: bool = False,
) -> SweepResult:
    """Section 4.2: execution time vs. the Bandwidth Limiter setting."""
    bandwidths = list(bandwidths)
    impls = _impls(vls, include_scalar)
    result = SweepResult(
        kernel=spec.name, axis="bandwidth", points=bandwidths,
        impls=[impl_label(v) for v in impls],
    )
    for vl in impls:
        sdv, trace = run_implementation(spec, workload, vl, config=config,
                                        verify=verify)
        for bpc in bandwidths:
            sdv.configure(bandwidth_bpc=bpc)
            report = sdv.time(trace)
            result.add(Measurement(
                kernel=spec.name, impl=impl_label(vl),
                extra_latency=sdv.extra_latency, bandwidth_bpc=bpc,
                cycles=report.cycles,
                report=report if keep_reports else None,
            ))
    return result


def vl_sweep(
    spec: KernelSpec,
    workload,
    *,
    vls: Sequence[int] = DEFAULT_VLS,
    config: SdvConfig | None = None,
    verify: bool = True,
) -> dict[str, float]:
    """Execution time per implementation at the default knob settings
    (the zero-extra-latency, full-bandwidth column of Figures 3/4)."""
    out: dict[str, float] = {}
    for vl in _impls(vls, include_scalar=True):
        sdv, trace = run_implementation(spec, workload, vl, config=config,
                                        verify=verify)
        out[impl_label(vl)] = sdv.time(trace).cycles
    return out
