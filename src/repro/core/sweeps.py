"""The paper's three sweeps.

Efficiency structure (what makes paper-scale sweeps tractable):

* the trace of one (kernel, implementation) pair is generated **once** —
  the Latency Controller and Bandwidth Limiter knobs do not change what the
  program does, only how long it takes (exactly like the FPGA) — and can be
  persisted to an on-disk cache (``trace_cache=``) so repeated runs skip
  functional re-execution entirely;
* the cache classification and lowering of that trace are computed **once**
  (both are knob-independent) and cached on the trace;
* every sweep point of the trace is then timed in **one** batch-engine walk
  (:mod:`repro.engine.batch_sim`) with the knob axis vectorized — not one
  re-timing pass per point;
* trace generation for the different implementations fans out across worker
  processes (``jobs=N``, :mod:`repro.core.parallel`);
* the reference result used for verification is computed once per
  (kernel, workload), not once per implementation.

The default sweep axes follow Section 4: extra latency 0..1024 cycles,
bandwidth 1..64 B/cycle in powers of two, VL in {8,...,256} plus scalar.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import os
import pickle
import pkgutil
import sys
import time
import uuid
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.config import SdvConfig
from repro.core import shm as shm_mod
from repro.core.measurements import Measurement, SweepResult
from repro.core.parallel import resolve_jobs, run_tasks
from repro.errors import ConfigError, KernelError, TraceError
from repro.kernels.base import KernelSpec
from repro.memory.classify_fast import (
    default_classifier,
    set_default_classifier,
)
from repro.obs import engine_stats as engine_stats_mod
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.runlog import RunLog, get_runlog
from repro.obs.spans import SpanTracer, get_tracer
from repro.soc.sdv import FpgaSdv
from repro.trace.events import TraceBuffer
from repro.trace.serialize import CLASSIFIED_FORMAT_VERSION
from repro.trace.serialize import FORMAT_VERSION as TRACE_FORMAT_VERSION
from repro.trace.serialize import (
    load_classified,
    load_trace,
    save_classified,
    save_trace,
)

#: Figure 3/4 x-axis: extra latency cycles added by the Latency Controller.
DEFAULT_LATENCIES: tuple[int, ...] = (0, 32, 64, 128, 256, 512, 1024)

#: Figure 5 x-axis: Bandwidth Limiter setting in bytes/cycle.
DEFAULT_BANDWIDTHS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

#: vector lengths evaluated in the paper (doubles per register).
DEFAULT_VLS: tuple[int, ...] = (8, 16, 32, 64, 128, 256)

#: engine used to re-time sweep points unless the caller overrides it.
DEFAULT_SWEEP_ENGINE = "batch"


def impl_label(vl: int | None) -> str:
    """Column label: None -> 'scalar', 128 -> 'vl128'."""
    return "scalar" if vl is None else f"vl{vl}"


def workload_fingerprint(workload, payload: bytes | None = None) -> str:
    """Stable content hash of a prepared workload (trace-cache key part).

    Workloads are plain data (NumPy arrays, scipy matrices, graphs), so
    their pickle is deterministic for a given prepare(scale, seed).
    ``payload`` lets a caller that already pickled the workload (the
    sweep parent pickles once per kernel, not once per task) skip the
    re-serialization.
    """
    if payload is None:
        payload = pickle.dumps(workload, protocol=4)
    return hashlib.sha256(payload).hexdigest()[:16]


#: trace-machinery modules whose source co-determines every recorded
#: trace: Dep semantics and replicate() fixups live in ``template``, the
#: object-vs-columnar emission switch in ``modes``. An edit there changes
#: the dep/address columns of cached traces without touching any kernel,
#: so they are always part of the fingerprint.
_TRACE_MACHINERY_MODULES = ("repro.trace.template", "repro.trace.modes")


def kernel_fingerprint(spec: KernelSpec) -> str:
    """Content hash of the code that would generate the trace.

    A cached trace is only as good as the emitters that recorded it: if a
    kernel's scalar or vector implementation changes (or the module around
    it — templated emitters lean on module-level helpers), previously
    cached traces must not be served. Hashing the defining modules' source
    invalidates them automatically. Beyond the defining module itself,
    the hash covers:

    * every loaded sibling module of the emitter's ``repro.*`` package
      (templated emitters split helpers across ``kernels/<k>/``), and
    * the trace machinery (:data:`_TRACE_MACHINERY_MODULES`) — the
      template ``Dep``/address-stream semantics determine the recorded
      dep columns, so editing them must invalidate every cached trace.

    Non-``repro`` emitters (ad-hoc test stand-ins) hash only their own
    module, keeping the key independent of unrelated test-file churn.
    Callables without retrievable source (ad-hoc lambdas, C extensions)
    fall back to their repr, which at least separates distinct functions.
    """
    parts = [spec.name]
    mod_names: set[str] = set(_TRACE_MACHINERY_MODULES)
    for fn in (spec.scalar, spec.vector):
        mod_name = getattr(fn, "__module__", None)
        if mod_name is None:
            try:
                parts.append(inspect.getsource(fn))
            except (OSError, TypeError):
                parts.append(repr(fn))
            continue
        mod_names.add(mod_name)
        if mod_name.startswith("repro."):
            # enumerate the emitter's package from disk (not from
            # sys.modules, which would make the key import-order
            # dependent and break parent/worker agreement)
            pkg_name = mod_name.rsplit(".", 1)[0]
            try:
                pkg = importlib.import_module(pkg_name)
            except ImportError:
                continue
            for info in pkgutil.iter_modules(getattr(pkg, "__path__", [])):
                if not info.ispkg:
                    mod_names.add(f"{pkg_name}.{info.name}")
    for name in sorted(mod_names):
        try:
            mod = importlib.import_module(name)
            parts.append(inspect.getsource(mod))
        except (ImportError, OSError, TypeError):
            parts.append(f"<no-source:{name}>")
    return hashlib.sha256("\0".join(parts).encode()).hexdigest()[:12]


def trace_cache_path(cache_dir: str | os.PathLike, spec_name: str,
                     workload, vl: int | None, sdv: FpgaSdv,
                     spec: KernelSpec | None = None,
                     workload_fp: str | None = None) -> Path:
    """Cache file for one (kernel, workload, max_vl, geometry) trace.

    The name carries everything that determines the recorded trace: the
    kernel + workload + VL + SoC geometry, the on-disk trace schema
    version (``serialize.FORMAT_VERSION``), and — when ``spec`` is given —
    a fingerprint of the kernel's emitter source, so stale traces from an
    older schema or an edited kernel are never loaded. ``workload_fp``
    is :func:`workload_fingerprint` hoisted by the caller (the sweep
    parent computes it once per kernel instead of pickling the workload
    in every task).
    """
    src = kernel_fingerprint(spec) if spec is not None else "nosrc"
    geom = hashlib.sha256(
        repr((sdv.geometry_key(), sdv.config.memory_bytes,
              None if vl is None else sdv.max_vl)).encode()
    ).hexdigest()[:12]
    wfp = workload_fp if workload_fp is not None \
        else workload_fingerprint(workload)
    name = (f"{spec_name}-{impl_label(vl)}-"
            f"{wfp}-{geom}-"
            f"t{TRACE_FORMAT_VERSION}-{src}.npz")
    return Path(cache_dir) / name


def classified_sidecar_path(cache_path: Path, sdv: FpgaSdv) -> Path:
    """The classified sidecar of one cached trace file.

    The name carries the sidecar schema version and the cache-geometry
    fingerprint (l1d/l2 size/ways/banks, prefetch depth, gather
    coalescing), so a geometry change simply misses instead of serving a
    stale classification; the fingerprint is re-checked against the
    file's embedded copy at load time.
    """
    return cache_path.with_name(
        f"{cache_path.name[:-4]}.cls{CLASSIFIED_FORMAT_VERSION}-"
        f"{sdv.geometry_fingerprint()}.npz")


def _seed_from_sidecar(sdv: FpgaSdv, trace: TraceBuffer,
                       cache_path: Path) -> None:
    """Cache-hit path: pre-load the trace's classification from its
    sidecar so the reload skips reclassification entirely."""
    if sdv.has_classification(trace):
        return  # the memoized trace object already carries it
    side = classified_sidecar_path(cache_path, sdv)
    ct = None
    if side.exists():
        ct = load_classified(side, trace, sdv.config,
                             geometry_fp=sdv.geometry_fingerprint())
    stats_on = engine_stats_mod.introspection_enabled()
    if ct is not None:
        sdv.seed_classification(trace, ct)
        if stats_on:
            engine_stats_mod.get_engine_stats().count(
                "classify.sidecar_hits")
    elif stats_on:
        engine_stats_mod.get_engine_stats().count(
            "classify.sidecar_misses")


#: per-process memo of loaded cached traces, keyed by cache-file path.
#: The path is content-addressed (kernel + workload + VL + geometry +
#: emitter fingerprint), so a hit is always the identical trace; serving
#: the same object also reuses the lowering/event-plan caches stashed on
#: it by the engines. Bounded: a sweep touches a handful of (kernel, VL)
#: traces at a time, evicted LRU.
_TRACE_MEMO: dict = {}
_TRACE_MEMO_CAP = 4


def _sweep_worker_init() -> None:
    """Per-worker initializer for the persistent sweep pool.

    Runs once when a worker process comes up (idempotent — also invoked
    in-process before serial runs). The trace memo then persists for the
    worker's lifetime, so consecutive figures sweeping the same kernels
    load and lower each cached trace once per worker instead of once per
    figure.
    """
    # the memo is deliberately *not* cleared: surviving entries are keyed
    # by content-addressed paths and stay valid across figures. Warm the
    # kernel registry here so the first task doesn't pay the import.
    import repro.kernels  # noqa: F401

    # a forked worker inherits the parent's trace-plane object; give it a
    # fresh one so it never unlinks segments it does not own (no-op when
    # run in-process before a serial fallback)
    shm_mod.reset_worker_plane()


def _load_trace_memoized(cache_path):
    key = str(cache_path)
    hit = _TRACE_MEMO.pop(key, None)
    if hit is None:
        hit = load_trace(cache_path)
        while len(_TRACE_MEMO) >= _TRACE_MEMO_CAP:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
    _TRACE_MEMO[key] = hit  # (re-)insert at the LRU tail
    return hit


def run_implementation(
    spec: KernelSpec,
    workload,
    vl: int | None,
    *,
    config: SdvConfig | None = None,
    verify: bool = True,
    reference=None,
    trace_cache: str | os.PathLike | None = None,
    workload_fp: str | None = None,
) -> tuple[FpgaSdv, TraceBuffer]:
    """Build one implementation's trace on a fresh SDV.

    Returns the SDV (holding the workload's memory image configuration) and
    the sealed trace, ready to be re-timed at many knob settings.

    ``reference`` lets callers hoist ``spec.reference(workload)`` out of a
    per-implementation loop (it is identical for every VL); when omitted
    and ``verify`` is set, it is computed here. With ``trace_cache`` set, a
    previously recorded trace is loaded instead of re-executing the kernel
    (skipping verification — the cached trace was verified when recorded),
    and fresh traces are saved back to the cache. ``workload_fp`` is the
    hoisted :func:`workload_fingerprint` (avoids re-pickling the workload
    per implementation).
    """
    sdv = FpgaSdv(config)
    if vl is not None:
        sdv.configure(max_vl=vl)

    cache_path = None
    if trace_cache is not None:
        root = Path(trace_cache)
        if root.exists() and not root.is_dir():
            raise TraceError(
                f"trace cache path '{root}' exists and is not a directory"
            )
        cache_path = trace_cache_path(root, spec.name, workload, vl, sdv,
                                      spec=spec, workload_fp=workload_fp)
        if cache_path.exists():
            if engine_stats_mod.introspection_enabled():
                engine_stats_mod.get_engine_stats().count(
                    "trace_cache.hits")
            trace = _load_trace_memoized(cache_path)
            _seed_from_sidecar(sdv, trace, cache_path)
            return sdv, trace
        if engine_stats_mod.introspection_enabled():
            engine_stats_mod.get_engine_stats().count("trace_cache.misses")

    session = sdv.session()
    builder = spec.vector if vl is not None else spec.scalar
    output = builder(session, workload)
    trace = session.seal()
    if verify:
        ref = spec.reference(workload) if reference is None else reference
        if not spec.check(output, ref):
            raise KernelError(
                f"{spec.name}/{impl_label(vl)} produced a wrong result"
            )
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        save_trace(trace, cache_path)
        # classification is knob-independent and every consumer needs it
        # next, so computing it here is never wasted work — and the
        # sidecar makes the *next* cache hit skip it outright
        save_classified(sdv.classify(trace),
                        classified_sidecar_path(cache_path, sdv),
                        geometry_fp=sdv.geometry_fingerprint())
    return sdv, trace


def _impls(vls: Sequence[int], include_scalar: bool) -> list[int | None]:
    out: list[int | None] = [None] if include_scalar else []
    out.extend(vls)
    return out


def _sweep_configs(base: SdvConfig, axis: str,
                   points: Sequence[int]) -> list[SdvConfig]:
    if axis == "latency":
        return [base.with_extra_latency(p) for p in points]
    return [base.with_bandwidth(p) for p in points]


@dataclass
class _ImplOutcome:
    """Everything one (kernel, implementation) task ships back to the
    parent sweep: measurements plus the worker's observability payload
    (spans and a metrics snapshot — instrument objects never cross the
    process boundary, plain data does)."""

    measurements: list[Measurement]
    spans: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    pid: int = 0
    wall_s: float = 0.0
    log: list = field(default_factory=list)
    engine_stats: dict = field(default_factory=dict)


def _task_obs(trace_spans: bool, runlog_on: bool, trace_id: str,
              introspection: bool):
    """Per-task observability bundle (worker-local instruments plus the
    engine-stats baseline snapshot for delta shipping)."""
    tracer = SpanTracer(enabled=trace_spans)
    registry = MetricsRegistry()
    # worker-local run log carrying the parent's trace id (the sweep
    # adopts its records; in-process runs ship them back the same way)
    log = RunLog(enabled=runlog_on, trace_id=trace_id or None)
    # sync this process's introspection flag with the parent's; ship only
    # the *delta* recorded by this task — workers are persistent, and in
    # serial runs the parent collector already holds what we record
    engine_stats_mod.set_introspection(introspection)
    es_before = (engine_stats_mod.get_engine_stats().snapshot()
                 if introspection else None)
    return tracer, registry, log, es_before


def _es_delta(introspection: bool, es_before) -> dict:
    if not introspection:
        return {}
    return engine_stats_mod.snapshot_delta(
        es_before, engine_stats_mod.get_engine_stats().snapshot())


def _resolve_spec(spec_or_name) -> KernelSpec:
    """Registry kernels travel to workers by name; resolve either form."""
    if isinstance(spec_or_name, str):
        from repro.kernels import KERNELS  # registry lookup in the worker

        return KERNELS[spec_or_name]
    return spec_or_name


def _resolve_plane(obj):
    """A workload/reference task slot may carry a :class:`shm.PlaneRef`
    instead of the object (published once per sweep, not pickled per
    task); resolve it through the per-process plane memo."""
    if isinstance(obj, shm_mod.PlaneRef):
        got = shm_mod.attach_workload(obj)
        if got is None:
            raise TraceError(
                f"shared workload segment '{obj.name}' is gone")
        return got
    return obj


def _time_points(sdv: FpgaSdv, trace: TraceBuffer, kernel: str, label: str,
                 axis: str, points: Sequence[int], keep_reports: bool,
                 engine: str, attributions: bool, tracer: SpanTracer,
                 registry: MetricsRegistry) -> list[Measurement]:
    """Time one trace at the given points of one axis.

    The single re-timing code path shared by whole-implementation tasks
    and point shards — sharding a sweep cannot change a Measurement
    because every shard runs exactly this function on a slice of the
    point axis (each point is timed under its own config, independent of
    its neighbours on all serial engines; the batch engine is never
    sharded).
    """
    configs = _sweep_configs(sdv.config, axis, points)
    base_lat = sdv.extra_latency
    base_bpc = int(sdv.bandwidth_bpc)

    def measurement(point, cycles, report, att=None):
        return Measurement(
            kernel=kernel, impl=label,
            extra_latency=point if axis == "latency" else base_lat,
            bandwidth_bpc=point if axis == "bandwidth" else base_bpc,
            cycles=cycles, report=report, attribution=att,
        )

    with tracer.span(f"re-time:{kernel}:{label}", kernel=kernel,
                     impl=label, engine=engine, points=len(points),
                     attributions=attributions):
        t0 = time.perf_counter()
        if attributions and engine == "batch" and not keep_reports:
            # fused path: ONE vectorized walk times every sweep point AND
            # every attribution-ladder rung (the ladder's L0 column *is*
            # the sweep cycle count, bit-for-bit), so turning buckets on
            # costs a few extra knob-axis columns, not extra walks
            from repro.obs.attribution import attribute_many

            atts = attribute_many(sdv.classify(trace), configs,
                                  lowered=sdv.lower(trace))
            measurements = [measurement(p, att.total, None, att)
                            for p, att in zip(points, atts)]
        elif engine == "batch" and not keep_reports:
            # compact path: one vectorized walk, a bare cycles vector, no
            # intermediate CycleReport garbage
            cycles = sdv.time_many(trace, configs, engine="batch",
                                   reports=False)
            measurements = [measurement(p, float(c), None)
                            for p, c in zip(points, cycles)]
        else:
            reports = sdv.time_many(trace, configs, engine=engine)
            measurements = [measurement(p, r.cycles,
                                        r if keep_reports else None)
                            for p, r in zip(points, reports)]
        registry.histogram("sweep.retime_s").observe(
            time.perf_counter() - t0)

    if attributions and not (engine == "batch" and not keep_reports):
        from repro.obs.attribution import attribute_many

        with tracer.span(f"attribute:{kernel}:{label}", kernel=kernel,
                         impl=label):
            atts = attribute_many(sdv.classify(trace), configs,
                                  lowered=sdv.lower(trace))
        measurements = [replace(m, attribution=att)
                        for m, att in zip(measurements, atts)]
    return measurements


def _time_one_impl(spec: KernelSpec, workload, vl: int | None, axis: str,
                   points: Sequence[int], config: SdvConfig | None,
                   verify: bool, reference, keep_reports: bool, engine: str,
                   trace_cache, trace_spans: bool = False,
                   attributions: bool = False, runlog_on: bool = False,
                   trace_id: str = "", introspection: bool = False,
                   workload_fp: str | None = None) -> _ImplOutcome:
    """Generate + time one implementation across all points of one axis."""
    t_begin = time.perf_counter()
    tracer, registry, log, es_before = _task_obs(
        trace_spans, runlog_on, trace_id, introspection)
    label = impl_label(vl)
    log.event("impl.start", kernel=spec.name, impl=label, axis=axis,
              points=len(points), engine=engine)

    with tracer.span(f"trace-gen:{spec.name}:{label}", kernel=spec.name,
                     impl=label):
        t0 = time.perf_counter()
        sdv, trace = run_implementation(spec, workload, vl, config=config,
                                        verify=verify, reference=reference,
                                        trace_cache=trace_cache,
                                        workload_fp=workload_fp)
        trace_gen_s = time.perf_counter() - t0
        registry.histogram("sweep.trace_gen_s").observe(trace_gen_s)
        log.event("impl.trace_ready", kernel=spec.name, impl=label,
                  records=len(trace), wall_s=round(trace_gen_s, 6))

    measurements = _time_points(sdv, trace, spec.name, label, axis, points,
                                keep_reports, engine, attributions,
                                tracer, registry)

    registry.counter("sweep.impls_timed").inc()
    registry.counter("sweep.points_timed").inc(len(points))
    wall_s = time.perf_counter() - t_begin
    log.event("impl.done", kernel=spec.name, impl=label,
              measurements=len(measurements), wall_s=round(wall_s, 6))
    return _ImplOutcome(
        measurements=measurements,
        spans=tracer.spans,
        metrics=registry.snapshot(),
        pid=os.getpid(),
        wall_s=wall_s,
        log=log.records,
        engine_stats=_es_delta(introspection, es_before),
    )


def _impl_task(args) -> _ImplOutcome:
    """Module-level worker: one (kernel, implementation) per process task."""
    (spec_or_name, workload, vl, axis, points, config, verify, reference,
     keep_reports, engine, trace_cache, trace_spans, attributions,
     runlog_on, trace_id, introspection, workload_fp,
     classify_name) = args
    set_default_classifier(classify_name)
    return _time_one_impl(_resolve_spec(spec_or_name),
                          _resolve_plane(workload), vl, axis, points,
                          config, verify, _resolve_plane(reference),
                          keep_reports, engine, trace_cache,
                          trace_spans, attributions, runlog_on, trace_id,
                          introspection, workload_fp)


@dataclass
class _GenOutcome:
    """Phase-A result: the published trace ref (``None`` when the plane
    degraded mid-flight), its classified sibling, plus the worker's
    observability payload."""

    ref: shm_mod.PlaneRef | None = None
    cref: shm_mod.PlaneRef | None = None
    records: int = 0
    spans: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    pid: int = 0
    wall_s: float = 0.0
    log: list = field(default_factory=list)
    engine_stats: dict = field(default_factory=dict)


def _gen_task(args) -> _GenOutcome:
    """Phase A: generate (or load) one implementation's trace and publish
    it to the trace plane under the sweep parent's segment prefix."""
    (spec_or_name, workload, vl, config, verify, reference, trace_cache,
     workload_fp, prefix, key, trace_spans, runlog_on, trace_id,
     introspection, classify_name) = args
    set_default_classifier(classify_name)
    t_begin = time.perf_counter()
    spec = _resolve_spec(spec_or_name)
    workload = _resolve_plane(workload)
    reference = _resolve_plane(reference)
    tracer, registry, log, es_before = _task_obs(
        trace_spans, runlog_on, trace_id, introspection)
    label = impl_label(vl)
    with tracer.span(f"trace-gen:{spec.name}:{label}", kernel=spec.name,
                     impl=label):
        t0 = time.perf_counter()
        sdv, trace = run_implementation(spec, workload, vl, config=config,
                                        verify=verify, reference=reference,
                                        trace_cache=trace_cache,
                                        workload_fp=workload_fp)
        trace_gen_s = time.perf_counter() - t0
        registry.histogram("sweep.trace_gen_s").observe(trace_gen_s)
    # transfer=True: the parent adopts the segment as results arrive, so
    # this (worker) process never unlinks it
    ref = shm_mod.get_plane().publish_trace(key, trace, prefix=prefix,
                                            transfer=True)
    if ref is not None:
        registry.counter("shm.traces_published").inc()
        registry.counter("shm.bytes_published").inc(ref.size)
    # publish the knob-independent classification alongside the trace,
    # so phase-B shards attach it instead of reclassifying per shard
    # (classify() serves the sidecar-seeded result on cache hits)
    cref = None
    if ref is not None:
        with tracer.span(f"classify:{spec.name}:{label}",
                         kernel=spec.name, impl=label):
            ct = sdv.classify(trace)
        cref = shm_mod.get_plane().publish_classified(
            f"{key}:cls:{sdv.geometry_fingerprint()}", ct,
            prefix=prefix, transfer=True)
        if cref is not None:
            registry.counter("shm.classified_published").inc()
            registry.counter("shm.bytes_published").inc(cref.size)
    log.event("impl.trace_ready", kernel=spec.name, impl=label,
              records=len(trace), wall_s=round(trace_gen_s, 6),
              published=ref is not None,
              classified=cref is not None)
    return _GenOutcome(
        ref=ref,
        cref=cref,
        records=len(trace),
        spans=tracer.spans,
        metrics=registry.snapshot(),
        pid=os.getpid(),
        wall_s=time.perf_counter() - t_begin,
        log=log.records,
        engine_stats=_es_delta(introspection, es_before),
    )


def _shard_task(args) -> _ImplOutcome:
    """Phase B: time one (kernel, impl, point-chunk) shard against a
    plane-published trace. Carries no spec and no workload — everything
    needed to rebuild the SDV is the config + VL, and the trace arrives
    as zero-copy views."""
    (kernel, vl, axis, points, config, keep_reports, engine, tref, cref,
     attributions, trace_spans, runlog_on, trace_id, introspection,
     classify_name) = args
    set_default_classifier(classify_name)
    t_begin = time.perf_counter()
    tracer, registry, log, es_before = _task_obs(
        trace_spans, runlog_on, trace_id, introspection)
    label = impl_label(vl)
    plane = shm_mod.get_plane()
    pre_bytes = plane.stats["bytes_attached"]
    trace = plane.attach_trace(tref)
    if trace is None:
        raise TraceError(
            f"trace-plane segment '{tref.name}' for {kernel}/{label} "
            "is gone")
    mapped = plane.stats["bytes_attached"] - pre_bytes
    if mapped:  # a real mapping, not the per-process memo serving a hit
        registry.counter("shm.traces_attached").inc()
        registry.counter("shm.bytes_attached").inc(mapped)
    attached_cls = False
    try:
        sdv = FpgaSdv(config)
        if vl is not None:
            sdv.configure(max_vl=vl)
        # seed the trace's classification from the plane instead of
        # reclassifying this shard (a worker that already timed another
        # shard of this trace serves it from the memoized trace object)
        if cref is not None and not sdv.has_classification(trace):
            ct = plane.attach_classified(cref, trace, sdv.config)
            attached_cls = ct is not None
            if ct is not None:
                sdv.seed_classification(trace, ct)
                registry.counter("shm.classified_attached").inc()
                if introspection:
                    engine_stats_mod.get_engine_stats().count(
                        "classify.plane_attach_hits")
            elif introspection:
                engine_stats_mod.get_engine_stats().count(
                    "classify.plane_attach_misses")
        measurements = _time_points(sdv, trace, kernel, label, axis,
                                    points, keep_reports, engine,
                                    attributions, tracer, registry)
    finally:
        plane.detach(tref)
        if attached_cls:
            plane.detach(cref)
    registry.counter("sweep.shards_timed").inc()
    registry.counter("sweep.points_timed").inc(len(points))
    wall_s = time.perf_counter() - t_begin
    registry.histogram("sweep.shard_s").observe(wall_s)
    log.event("shard.done", kernel=kernel, impl=label, axis=axis,
              points=len(points), wall_s=round(wall_s, 6))
    return _ImplOutcome(
        measurements=measurements,
        spans=tracer.spans,
        metrics=registry.snapshot(),
        pid=os.getpid(),
        wall_s=wall_s,
        log=log.records,
        engine_stats=_es_delta(introspection, es_before),
    )


def _phase_b_task(args):
    """Dispatcher for the mixed phase-B task list: point shards for
    plane-published traces, whole-implementation fallbacks for traces
    the plane could not take."""
    kind, payload = args
    if kind == "shard":
        return _shard_task(payload)
    return _impl_task(payload)


def _plan_shards(n_points: int, records: int, total_cost: int,
                 workers: int, shard_points: int | None,
                 oversubscribe: int = 4) -> list[tuple[int, int]]:
    """Chunk one implementation's point axis into ``[lo, hi)`` shards.

    Cost model: re-timing one point of one implementation walks its
    whole trace once, so an implementation's sweep costs
    ``records x n_points`` and the grid costs ``total_cost`` (the sum
    over implementations). The planner targets
    ``total_cost / (workers x oversubscribe)`` per shard — about
    ``oversubscribe`` shards per worker across the whole grid, enough
    granularity for longest-first dispatch to level the heavy
    implementations without drowning in per-task overhead. A cheap
    implementation (few records) gets proportionally more points per
    shard; ``shard_points`` overrides the computed chunk outright.
    """
    if shard_points is not None and shard_points > 0:
        step = min(shard_points, n_points)
    else:
        target = max(1, total_cost // max(1, workers * oversubscribe))
        step = max(1, min(n_points, round(target / max(1, records))))
    return [(lo, min(lo + step, n_points))
            for lo in range(0, n_points, step)]


def _sweep_sharded(spec: KernelSpec, workload, axis: str,
                   points: list[int], impls: list[int | None],
                   config: SdvConfig | None, verify: bool,
                   keep_reports: bool, engine: str, jobs: int,
                   trace_cache, attributions: bool,
                   shard_points: int | None, reference,
                   workload_fp: str, wl_payload: bytes) -> SweepResult:
    """The two-phase sharded pipeline over the trace plane.

    Phase A fans trace generation out per implementation; each worker
    publishes its sealed trace into shared memory and the parent adopts
    the segment. Phase B re-times (impl, point-chunk) shards against
    zero-copy attachments, dispatched longest-expected-first; an
    implementation whose publish failed falls back to one
    whole-implementation task. Measurement rows and their ordering are
    bit-identical to the unsharded path (same ``_time_points`` on the
    same traces, reassembled impl-major then point-major).
    """
    tracer = get_tracer()
    registry = get_metrics()
    runlog = get_runlog()
    engine_stats = engine_stats_mod.get_engine_stats()
    introspection = engine_stats_mod.introspection_enabled()
    my_pid = os.getpid()
    workers = resolve_jobs(jobs)
    plane = shm_mod.get_plane()
    prefix = shm_mod.plane_prefix()
    # per-sweep nonce: a worker's publish memo must never serve a segment
    # an earlier sweep's parent already unlinked
    nonce = uuid.uuid4().hex[:8]
    labels = [impl_label(v) for v in impls]
    classify_name = default_classifier()
    result = SweepResult(kernel=spec.name, axis=axis, points=points,
                         impls=labels)
    from repro.kernels import KERNELS

    payload = spec.name if KERNELS.get(spec.name) is spec else spec
    to_release: list[shm_mod.PlaneRef] = []

    def _adopt(ref: shm_mod.PlaneRef | None) -> None:
        if ref is not None and plane.adopt(ref) and ref not in to_release:
            to_release.append(ref)

    def _merge(outcome) -> None:
        tracer.adopt(outcome.spans)
        registry.merge(outcome.metrics)
        runlog.adopt(outcome.log)
        if outcome.pid != my_pid:
            # in-process outcomes already recorded straight into this
            # collector; only worker deltas need merging
            engine_stats.merge(outcome.engine_stats)

    try:
        with tracer.span(f"sweep:{spec.name}:{axis}", kernel=spec.name,
                         axis=axis, impls=len(impls), points=len(points),
                         engine=engine, jobs=jobs, sharded=True), \
             runlog.context(f"sweep:{spec.name}:{axis}", kernel=spec.name,
                            axis=axis, impls=len(impls),
                            points=len(points), engine=engine, jobs=jobs,
                            sharded=True):
            # ---------------- phase A: generate + publish every trace
            wref = shm_mod.publish_workload(
                workload, f"{nonce}:{spec.name}", payload=wl_payload)
            if wref is not None:
                to_release.append(wref)
            rref = None
            if verify and reference is not None:
                rref = shm_mod.publish_workload(
                    reference, f"{nonce}:{spec.name}:ref")
                if rref is not None:
                    to_release.append(rref)
            gen_tasks = [
                (payload, wref if wref is not None else workload, vl,
                 config, verify, rref if rref is not None else reference,
                 trace_cache, workload_fp, prefix,
                 f"{nonce}:{spec.name}:{impl_label(vl)}",
                 tracer.enabled, runlog.enabled, runlog.trace_id,
                 introspection, classify_name)
                for vl in impls
            ]

            def gen_heartbeat(idx: int, out: _GenOutcome) -> None:
                _adopt(out.ref)
                _adopt(out.cref)
                runlog.event("sweep.trace_ready", kernel=spec.name,
                             axis=axis, impl=labels[idx],
                             records=out.records,
                             published=out.ref is not None,
                             classified=out.cref is not None,
                             worker_pid=out.pid,
                             wall_s=round(out.wall_s, 3))

            gen_outs = run_tasks(_gen_task, gen_tasks, jobs=jobs,
                                 on_result=gen_heartbeat,
                                 initializer=_sweep_worker_init)
            for out in gen_outs:
                _merge(out)
                _adopt(out.ref)
                _adopt(out.cref)
            runlog.event("sweep.shm_published", kernel=spec.name,
                         axis=axis, segments=len(to_release),
                         bytes=sum(r.size for r in to_release))

            # ---------------- phase B: longest-first point shards
            total_cost = sum(out.records for out in gen_outs
                             if out.ref is not None) * len(points)
            shard_specs = []  # (impl_idx, lo, hi, expected cost)
            whole_impls = []
            for i, out in enumerate(gen_outs):
                if out.ref is None:
                    whole_impls.append(i)
                    continue
                recs = max(1, out.records)
                for lo, hi in _plan_shards(len(points), recs, total_cost,
                                           workers, shard_points):
                    shard_specs.append((i, lo, hi, recs * (hi - lo)))
            # LPT: dispatch expected-longest shards first so the heavy
            # (kernel, impl) tails run while short shards backfill
            shard_specs.sort(key=lambda s: -s[3])
            tasks = []
            meta = []  # task order -> ("shard", impl_idx, lo)|("whole", i)
            for i, lo, hi, _cost in shard_specs:
                tasks.append(("shard", (
                    spec.name, impls[i], axis, points[lo:hi], config,
                    keep_reports, engine, gen_outs[i].ref,
                    gen_outs[i].cref, attributions,
                    tracer.enabled, runlog.enabled, runlog.trace_id,
                    introspection, classify_name)))
                meta.append(("shard", i, lo))
            for i in whole_impls:
                tasks.append(("whole", (
                    payload, wref if wref is not None else workload,
                    impls[i], axis, points, config, verify,
                    rref if rref is not None else reference, keep_reports,
                    engine, trace_cache, tracer.enabled, attributions,
                    runlog.enabled, runlog.trace_id, introspection,
                    workload_fp, classify_name)))
                meta.append(("whole", i, 0))
            runlog.event("sweep.shards_planned", kernel=spec.name,
                         axis=axis, shards=len(shard_specs),
                         whole_impls=len(whole_impls),
                         points=len(points), workers=workers,
                         total_cost=total_cost)
            registry.counter("sweep.shards_planned").inc(len(shard_specs))

            done = 0

            def shard_heartbeat(idx: int, out: _ImplOutcome) -> None:
                nonlocal done
                done += 1
                kind, i, lo = meta[idx]
                chunk = (f"[{lo}:{lo + len(out.measurements)})"
                         if kind == "shard" else "(all points)")
                runlog.event("sweep.shard_done", kernel=spec.name,
                             axis=axis, impl=labels[i], chunk=chunk,
                             done=done, total=len(tasks),
                             worker_pid=out.pid,
                             wall_s=round(out.wall_s, 3))
                print(f"[sweep {spec.name}/{axis}] {labels[i]}{chunk} "
                      f"done ({done}/{len(tasks)}, worker pid {out.pid}, "
                      f"{out.wall_s:.1f}s)", file=sys.stderr)

            tb0 = time.perf_counter()
            outs = run_tasks(_phase_b_task, tasks, jobs=jobs,
                             on_result=shard_heartbeat,
                             initializer=_sweep_worker_init)
            phase_wall = time.perf_counter() - tb0

            # ---------------- reassembly: impl-major, point-major
            per_impl: dict[int, dict[int, list[Measurement]]] = {}
            whole: dict[int, list[Measurement]] = {}
            busy: dict[int, float] = {}
            for (kind, i, lo), out in zip(meta, outs):
                _merge(out)
                busy[out.pid] = busy.get(out.pid, 0.0) + out.wall_s
                if kind == "shard":
                    per_impl.setdefault(i, {})[lo] = out.measurements
                else:
                    whole[i] = out.measurements
            if busy:
                vals = sorted(busy.values())
                mean = sum(vals) / len(vals)
                runlog.event(
                    "sweep.load_balance", kernel=spec.name, axis=axis,
                    workers=len(busy),
                    busy_s=[round(v, 3) for v in vals],
                    max_over_mean=round(vals[-1] / mean, 3) if mean else 1.0,
                    busy_frac=(round(sum(vals) / (len(busy) * phase_wall), 3)
                               if phase_wall > 0 else 1.0))
                for v in vals:
                    if phase_wall > 0:
                        registry.histogram("sweep.worker_busy_frac") \
                            .observe(v / phase_wall)
            for i in range(len(impls)):
                if i in whole:
                    ms = whole[i]
                else:
                    chunks = per_impl.get(i, {})
                    ms = [m for lo in sorted(chunks) for m in chunks[lo]]
                if len(ms) != len(points):
                    raise TraceError(
                        f"sharded sweep reassembly for {spec.name}/"
                        f"{labels[i]} produced {len(ms)} of "
                        f"{len(points)} points")
                if i not in whole:  # whole-impl tasks counted themselves
                    registry.counter("sweep.impls_timed").inc()
                for m in ms:
                    result.add(m)
    finally:
        for r in to_release:
            plane.release(r)
    registry.counter("sweep.sweeps_run").inc()
    return result


def _validate_grid(axis: str, points: Sequence[int], vls: Sequence[int],
                   config: SdvConfig | None) -> None:
    """Fail fast on an illegal sweep grid, *before* trace generation.

    Trace generation is the expensive half of a sweep; an illegal knob
    value must not surface as a mid-sweep engine error after minutes of
    emitting. Reuses the ``repro.lint`` config pass so the CLI linter and
    the harness agree on legality.
    """
    from repro.lint.config_rules import check_sweep
    from repro.lint.findings import Severity

    errors = [f for f in check_sweep(axis, points, vls, config=config)
              if f.severity >= Severity.ERROR]
    if errors:
        lines = "; ".join(f"{f.rule} {f.location}: {f.message}"
                          for f in errors)
        raise ConfigError(f"illegal {axis} sweep grid: {lines}")


def _sweep(spec: KernelSpec, workload, axis: str, points: list[int],
           vls: Sequence[int], include_scalar: bool,
           config: SdvConfig | None, verify: bool, keep_reports: bool,
           engine: str, jobs: int, trace_cache,
           attributions: bool = False, shm: bool = True,
           shard_points: int | None = None) -> SweepResult:
    _validate_grid(axis, points, vls, config)
    impls = _impls(vls, include_scalar)
    workers = resolve_jobs(jobs)
    # hoisted per (kernel, workload): the reference is identical for
    # every implementation, and the workload pickles exactly once (the
    # fingerprint hash and the shm blob share the payload)
    reference = spec.reference(workload) if verify else None
    wl_payload = pickle.dumps(workload, protocol=4)
    workload_fp = workload_fingerprint(workload, payload=wl_payload)
    use_plane = shm and workers > 1 and shm_mod.shm_available()

    if use_plane and engine != "batch" and len(points) > 1:
        # serial engines walk the trace once per point: shard the point
        # axis across workers over the trace plane
        return _sweep_sharded(spec, workload, axis, points, impls, config,
                              verify, keep_reports, engine, jobs,
                              trace_cache, attributions, shard_points,
                              reference, workload_fp, wl_payload)

    result = SweepResult(
        kernel=spec.name, axis=axis, points=points,
        impls=[impl_label(v) for v in impls],
    )
    tracer = get_tracer()
    registry = get_metrics()
    runlog = get_runlog()
    engine_stats = engine_stats_mod.get_engine_stats()
    introspection = engine_stats_mod.introspection_enabled()
    my_pid = os.getpid()
    # registry kernels travel to workers by name (always picklable);
    # ad-hoc specs travel as themselves
    from repro.kernels import KERNELS

    payload = spec.name if KERNELS.get(spec.name) is spec else spec
    # with the plane available, the workload (and reference) cross the
    # process boundary once as shared segments, not once per task tuple
    plane = shm_mod.get_plane()
    wref = rref = None
    if use_plane and len(impls) > 1:
        wref = shm_mod.publish_workload(workload, f"{spec.name}:{uuid.uuid4().hex[:8]}",
                                        payload=wl_payload)
        if verify and reference is not None:
            rref = shm_mod.publish_workload(
                reference, f"{spec.name}:ref:{uuid.uuid4().hex[:8]}")
    tasks = [
        (payload, wref if wref is not None else workload, vl, axis,
         points, config, verify, rref if rref is not None else reference,
         keep_reports, engine, trace_cache, tracer.enabled, attributions,
         runlog.enabled, runlog.trace_id, introspection, workload_fp,
         default_classifier())
        for vl in impls
    ]
    labels = [impl_label(v) for v in impls]
    parallel = workers > 1
    done = 0

    def heartbeat(idx: int, outcome: _ImplOutcome) -> None:
        # per-worker progress while slower implementations are in flight
        nonlocal done
        done += 1
        runlog.event("sweep.heartbeat", kernel=spec.name, axis=axis,
                     impl=labels[idx], done=done, total=len(tasks),
                     worker_pid=outcome.pid,
                     wall_s=round(outcome.wall_s, 3))
        if parallel:
            print(f"[sweep {spec.name}/{axis}] {labels[idx]} done "
                  f"({done}/{len(tasks)}, worker pid {outcome.pid}, "
                  f"{outcome.wall_s:.1f}s)", file=sys.stderr)

    try:
        with tracer.span(f"sweep:{spec.name}:{axis}", kernel=spec.name,
                         axis=axis, impls=len(tasks), points=len(points),
                         engine=engine, jobs=jobs):
            with runlog.context(f"sweep:{spec.name}:{axis}",
                                kernel=spec.name, axis=axis,
                                impls=len(tasks), points=len(points),
                                engine=engine, jobs=jobs):
                for outcome in run_tasks(_impl_task, tasks, jobs=jobs,
                                         on_result=heartbeat,
                                         initializer=_sweep_worker_init):
                    tracer.adopt(outcome.spans)
                    registry.merge(outcome.metrics)
                    runlog.adopt(outcome.log)
                    if outcome.pid != my_pid:
                        # in-process outcomes already recorded straight
                        # into this collector; only worker deltas need
                        # merging
                        engine_stats.merge(outcome.engine_stats)
                    for m in outcome.measurements:
                        result.add(m)
    finally:
        for r in (wref, rref):
            if r is not None:
                plane.release(r)
    registry.counter("sweep.sweeps_run").inc()
    return result


def latency_sweep(
    spec: KernelSpec,
    workload,
    *,
    latencies: Iterable[int] = DEFAULT_LATENCIES,
    vls: Sequence[int] = DEFAULT_VLS,
    include_scalar: bool = True,
    config: SdvConfig | None = None,
    verify: bool = True,
    keep_reports: bool = False,
    engine: str = DEFAULT_SWEEP_ENGINE,
    jobs: int = 1,
    trace_cache: str | os.PathLike | None = None,
    attributions: bool = False,
    shm: bool = True,
    shard_points: int | None = None,
) -> SweepResult:
    """Section 4.1: execution time vs. extra memory latency.

    ``attributions=True`` additionally decomposes every sweep point's
    cycles into the :mod:`repro.obs.attribution` buckets (attached per
    measurement) at the cost of ~3 extra vectorized walks per impl.
    With ``jobs > 1`` and a serial engine, the sweep runs the sharded
    scheduler over the shared-memory trace plane (see
    ``docs/parallelism.md``); ``shm=False`` forces the plain per-impl
    fan-out and ``shard_points`` overrides the cost model's point-chunk
    size.
    """
    return _sweep(spec, workload, "latency", list(latencies), vls,
                  include_scalar, config, verify, keep_reports, engine,
                  jobs, trace_cache, attributions, shm, shard_points)


def bandwidth_sweep(
    spec: KernelSpec,
    workload,
    *,
    bandwidths: Iterable[int] = DEFAULT_BANDWIDTHS,
    vls: Sequence[int] = DEFAULT_VLS,
    include_scalar: bool = True,
    config: SdvConfig | None = None,
    verify: bool = True,
    keep_reports: bool = False,
    engine: str = DEFAULT_SWEEP_ENGINE,
    jobs: int = 1,
    trace_cache: str | os.PathLike | None = None,
    attributions: bool = False,
    shm: bool = True,
    shard_points: int | None = None,
) -> SweepResult:
    """Section 4.2: execution time vs. the Bandwidth Limiter setting."""
    return _sweep(spec, workload, "bandwidth", list(bandwidths), vls,
                  include_scalar, config, verify, keep_reports, engine,
                  jobs, trace_cache, attributions, shm, shard_points)


def vl_sweep(
    spec: KernelSpec,
    workload,
    *,
    vls: Sequence[int] = DEFAULT_VLS,
    config: SdvConfig | None = None,
    verify: bool = True,
    trace_cache: str | os.PathLike | None = None,
) -> dict[str, float]:
    """Execution time per implementation at the default knob settings
    (the zero-extra-latency, full-bandwidth column of Figures 3/4)."""
    out: dict[str, float] = {}
    reference = spec.reference(workload) if verify else None
    for vl in _impls(vls, include_scalar=True):
        sdv, trace = run_implementation(spec, workload, vl, config=config,
                                        verify=verify, reference=reference,
                                        trace_cache=trace_cache)
        out[impl_label(vl)] = sdv.time(trace).cycles
    return out
