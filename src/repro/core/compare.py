"""Configuration comparison studies ("what-if" analysis).

The co-design loop the paper advocates (Section 5) is: change a hardware
parameter, re-run the kernels, compare. This module packages that loop:

* :func:`compare_sweeps` — align two :class:`SweepResult` grids point by
  point and report the speedup of B over A;
* :func:`compare_configs` — run every kernel on two machine builds and
  tabulate the ratios (the "is the bigger L2 worth it?" question);
* :class:`WhatIf` — a fluent helper for one-factor studies over a base
  config.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.config import SdvConfig
from repro.core.measurements import SweepResult
from repro.core.sweeps import run_implementation
from repro.errors import ReproError
from repro.kernels import KERNELS
from repro.kernels.base import KernelSpec
from repro.util.tables import TextTable


def compare_sweeps(a: SweepResult, b: SweepResult) -> dict[str, list[float]]:
    """Per-implementation speedup of ``b`` over ``a`` (>1 = b faster).

    Both sweeps must cover the same axis, points and implementations.
    """
    if (a.axis != b.axis or a.points != b.points or a.impls != b.impls):
        raise ReproError("sweep grids differ; nothing to compare")
    return {
        impl: [ta / tb for ta, tb in zip(a.series(impl), b.series(impl))]
        for impl in a.impls
    }


@dataclass(frozen=True)
class ConfigComparison:
    """Outcome of running the kernel suite on two machine builds."""

    label_a: str
    label_b: str
    #: kernel -> impl -> (cycles_a, cycles_b)
    cells: dict[str, dict[str, tuple[float, float]]]

    def speedup(self, kernel: str, impl: str) -> float:
        """cycles_a / cycles_b (>1 = config B faster)."""
        ca, cb = self.cells[kernel][impl]
        return ca / cb

    def render(self) -> str:
        impls = next(iter(self.cells.values())).keys()
        t = TextTable(["kernel"] + [f"{i} ({self.label_b}/{self.label_a})"
                                    for i in impls])
        for kernel, row in self.cells.items():
            t.add_row([kernel] + [f"{self.speedup(kernel, i):.2f}x"
                                  for i in row])
        return t.render()


def compare_configs(
    config_a: SdvConfig,
    config_b: SdvConfig,
    *,
    kernels: dict[str, KernelSpec] | None = None,
    workloads: dict[str, object] | None = None,
    scale_name: str = "smoke",
    seed: int = 7,
    vls: tuple[int | None, ...] = (None, 256),
    verify: bool = False,
) -> ConfigComparison:
    """Run the suite on both builds; returns the speedup table.

    ``workloads`` may pre-supply prepared workloads (keyed by kernel name);
    otherwise each spec's ``prepare`` runs at ``scale_name``.
    """
    from repro.workloads import get_scale

    kernels = kernels if kernels is not None else KERNELS
    scale = get_scale(scale_name)
    cells: dict[str, dict[str, tuple[float, float]]] = {}
    for name, spec in kernels.items():
        wl = (workloads[name] if workloads and name in workloads
              else spec.prepare(scale, seed))
        row: dict[str, tuple[float, float]] = {}
        for vl in vls:
            label = "scalar" if vl is None else f"vl{vl}"
            times = []
            for cfg in (config_a, config_b):
                sdv, trace = run_implementation(spec, wl, vl, config=cfg,
                                                verify=verify)
                times.append(sdv.time(trace).cycles)
            row[label] = (times[0], times[1])
        cells[name] = row
    return ConfigComparison(label_a="A", label_b="B", cells=cells)


class WhatIf:
    """One-factor co-design studies over a base configuration.

    >>> from repro.config import SdvConfig
    >>> study = WhatIf(SdvConfig())
    >>> cfgs = study.vary("vpu.lanes", [4, 8, 16])
    >>> [c.vpu.lanes for c in cfgs]
    [4, 8, 16]
    """

    def __init__(self, base: SdvConfig | None = None) -> None:
        self.base = (base if base is not None else SdvConfig()).validate()

    def vary(self, dotted_field: str, values) -> list[SdvConfig]:
        """Configs with ``dotted_field`` (e.g. ``'vpu.lanes'``) set to each
        value, everything else from the base."""
        parts = dotted_field.split(".")
        if len(parts) != 2:
            raise ReproError(
                f"expected 'section.field', got '{dotted_field}'"
            )
        section, field = parts
        if not hasattr(self.base, section):
            raise ReproError(f"unknown config section '{section}'")
        sub = getattr(self.base, section)
        if not hasattr(sub, field):
            raise ReproError(f"unknown field '{field}' in '{section}'")
        out = []
        for v in values:
            new_sub = dataclasses.replace(sub, **{field: v})
            out.append(dataclasses.replace(
                self.base, **{section: new_sub}).validate())
        return out

    def measure(self, dotted_field: str, values, *,
                spec: KernelSpec, workload, vl: int | None = 256,
                extra_latency: int = 0, bandwidth_bpc: int | None = None,
                metric: Callable | None = None) -> dict:
        """value -> metric for one kernel across the varied configs.

        The default metric is cycle count; ``extra_latency`` /
        ``bandwidth_bpc`` set the runtime knobs the study runs under (the
        memory-side levers only show their worth under pressure).
        """
        out = {}
        for value, cfg in zip(values, self.vary(dotted_field, values)):
            sdv, trace = run_implementation(spec, workload, vl, config=cfg,
                                            verify=False)
            sdv.configure(extra_latency=extra_latency,
                          bandwidth_bpc=bandwidth_bpc)
            report = sdv.time(trace)
            out[value] = metric(report) if metric else report.cycles
        return out
