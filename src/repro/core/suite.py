"""Whole-study report generation.

``run_suite`` executes the paper's complete experimental matrix (latency
and bandwidth sweeps for all four kernels, the headline numbers, the
machine probes, and roofline characterization) and renders one
self-contained Markdown report — the artifact a co-design meeting would
read. Used by ``repro-sdv report``.
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass, field

from repro.config import SdvConfig
from repro.core.analysis import characterize, roofline_bound
from repro.core.figures import headline_numbers, plateau_bandwidth
from repro.core.measurements import SweepResult
from repro.core.report import (
    render_figure3,
    render_figure4,
    render_figure5,
    render_headline,
)
from repro.core.sweeps import (
    DEFAULT_BANDWIDTHS,
    DEFAULT_LATENCIES,
    DEFAULT_SWEEP_ENGINE,
    DEFAULT_VLS,
    bandwidth_sweep,
    latency_sweep,
    run_implementation,
)
from repro.kernels import KERNELS
from repro.kernels.micro import characterize_machine
from repro.obs.lifecycle import reset_figure_state
from repro.soc import FpgaSdv
from repro.util.tables import TextTable
from repro.workloads import get_scale


@dataclass
class SuiteResult:
    """Everything ``run_suite`` produced, for programmatic use."""

    scale: str
    latency: dict[str, SweepResult] = field(default_factory=dict)
    bandwidth: dict[str, SweepResult] = field(default_factory=dict)
    elapsed_s: float = 0.0


def run_suite(*, scale_name: str = "ci", seed: int = 7,
              vls: tuple[int, ...] = DEFAULT_VLS,
              kernels: list[str] | None = None,
              verify: bool = True,
              engine: str = DEFAULT_SWEEP_ENGINE,
              jobs: int = 1,
              trace_cache: str | None = None,
              shm: bool = True,
              shard_points: int | None = None) -> SuiteResult:
    """Run the full experimental matrix; returns all sweep results.

    ``engine``/``jobs``/``trace_cache`` are forwarded to the sweeps: batch
    re-timing by default, ``jobs=N`` fans trace generation across worker
    processes, and a cache directory makes repeated runs skip functional
    execution entirely (with a cache set, the bandwidth sweep reuses the
    traces the latency sweep just recorded). ``shm=False`` disables the
    shared-memory trace plane (parallel serial-engine sweeps fall back to
    per-implementation tasks) and ``shard_points`` overrides the sharded
    scheduler's point-chunk size — see ``docs/parallelism.md``.
    """
    t0 = time.time()
    scale = get_scale(scale_name)
    names = kernels if kernels is not None else list(KERNELS)
    out = SuiteResult(scale=scale_name)
    for name in names:
        # figure boundary: fresh metrics, no dangling span/runlog nesting
        # carried over from a previous kernel's sweeps
        reset_figure_state()
        spec = KERNELS[name]
        workload = spec.prepare(scale, seed)
        out.latency[name] = latency_sweep(
            spec, workload, latencies=DEFAULT_LATENCIES, vls=vls,
            verify=verify, engine=engine, jobs=jobs,
            trace_cache=trace_cache, shm=shm, shard_points=shard_points)
        out.bandwidth[name] = bandwidth_sweep(
            spec, workload, bandwidths=DEFAULT_BANDWIDTHS, vls=vls,
            verify=False, engine=engine, jobs=jobs,
            trace_cache=trace_cache, shm=shm, shard_points=shard_points)
    out.elapsed_s = time.time() - t0
    return out


def render_report(suite: SuiteResult, *, seed: int = 7) -> str:
    """Render the suite as one self-contained Markdown document."""
    buf = io.StringIO()
    w = buf.write
    cfg = SdvConfig().validate()
    scale = get_scale(suite.scale)

    w("# FPGA-SDV study report\n\n")
    w(f"Workload scale: `{suite.scale}`; knobs swept: extra latency "
      f"{list(DEFAULT_LATENCIES)}, bandwidth {list(DEFAULT_BANDWIDTHS)} "
      f"B/cycle, VLs {list(suite.latency[next(iter(suite.latency))].impls)}."
      f" Suite wall time: {suite.elapsed_s:.1f}s.\n\n")

    w("## Machine\n\n```\n")
    w(f"VPU   : {cfg.vpu.lanes} lanes, max VL {cfg.vpu.max_vl} doubles "
      f"({cfg.vpu.register_bits} bits)\n")
    w(f"L2    : {cfg.l2.banks} banks x {cfg.l2.bank_bytes // 1024} KiB\n")
    w(f"DRAM  : {cfg.dram_latency:.0f} cycles min latency, "
      f"{cfg.mem.bytes_per_cycle_limit:.0f} B/cycle peak\n")
    probe = characterize_machine(FpgaSdv())
    w(probe.render())
    w("\n```\n\n")

    if "spmv" in suite.latency and 32 in suite.latency["spmv"].points:
        w("## Headline numbers (Section 4.1)\n\n```\n")
        w(render_headline(headline_numbers(suite.latency["spmv"])))
        w("\n```\n\n")

    w("## Figure 3 — execution time vs extra latency\n\n")
    for name, result in suite.latency.items():
        w(f"```\n{render_figure3(result)}\n```\n\n")

    w("## Figure 4 — normalized slowdown\n\n")
    for name, result in suite.latency.items():
        w(f"```\n{render_figure4(result)}\n```\n\n")

    w("## Figure 5 — normalized time vs bandwidth limit\n\n")
    for name, result in suite.bandwidth.items():
        w(f"```\n{render_figure5(result)}\n```\n\n")

    w("## Plateau summary\n\n")
    t = TextTable(["kernel"] + list(next(iter(
        suite.bandwidth.values())).impls))
    for name, result in suite.bandwidth.items():
        t.add_row([name] + [plateau_bandwidth(result, impl)
                            for impl in result.impls])
    w(f"Bandwidth (B/cycle) beyond which each implementation improves "
      f"by less than 5%:\n\n```\n{t.render()}\n```\n\n")

    w("## Roofline placement (vector implementations, default knobs)\n\n")
    t = TextTable(["kernel", "AI (flop/B)", "flops/cycle", "roof",
                   "% of roof"])
    for name in suite.latency:
        spec = KERNELS[name]
        workload = spec.prepare(scale, seed)
        sdv, trace = run_implementation(spec, workload, 256, verify=False)
        ct = sdv.classify(trace)
        c = characterize(ct, sdv.time(trace), kernel=name, impl="vl256")
        roof = roofline_bound(cfg, c.arithmetic_intensity, vector=True)
        pct = 100.0 * c.flops_per_cycle / roof if roof else 0.0
        t.add_row([name, f"{c.arithmetic_intensity:.3f}",
                   f"{c.flops_per_cycle:.3f}", f"{roof:.2f}",
                   f"{pct:.0f}%"])
    w(f"```\n{t.render()}\n```\n\n")

    w("## Conclusions checked\n\n")
    spmv4 = suite.latency.get("spmv")
    if spmv4 is not None:
        from repro.core.figures import figure4_table
        table = figure4_table(spmv4)
        w(f"* SpMV slowdown at +1024: scalar {table['scalar'][-1]:.2f}x "
          f"vs vl256 {table['vl256'][-1]:.2f}x — long vectors tolerate "
          "latency.\n")
    if "spmv" in suite.bandwidth:
        p_s = plateau_bandwidth(suite.bandwidth["spmv"], "scalar")
        p_v = plateau_bandwidth(suite.bandwidth["spmv"], "vl256")
        w(f"* SpMV bandwidth plateaus: scalar at {p_s} B/cycle vs vl256 at "
          f"{p_v} B/cycle — one long-vector core uses the memory system.\n")
    return buf.getvalue()
