"""Plain-text rendering of the paper's figures and tables."""

from __future__ import annotations

from repro.core.figures import (
    HeadlineNumbers,
    figure3_series,
    figure4_table,
    figure5_series,
    plateau_bandwidth,
)
from repro.core.measurements import SweepResult
from repro.util.tables import TextTable, render_heat_table


def render_figure3(result: SweepResult) -> str:
    """Figure 3 as a table: rows = extra latency, columns = implementation,
    cells = absolute kilocycles."""
    series = figure3_series(result)
    t = TextTable(["extra lat"] + result.impls)
    for i, p in enumerate(result.points):
        t.add_row([p] + [f"{series[impl][i] / 1e3:.1f}k"
                         for impl in result.impls])
    return f"Figure 3 — {result.kernel}: execution time (kcycles)\n" + t.render()


def render_figure4(result: SweepResult, *, color: bool = False) -> str:
    """Figure 4's heat table: slowdown vs own 0-latency run."""
    table = figure4_table(result)
    values = [
        [table[impl][i] for impl in result.impls]
        for i in range(len(result.points))
    ]
    return render_heat_table(
        result.points, result.impls, values,
        title=(f"Figure 4 — {result.kernel}: slowdown vs 0 extra latency "
               "(green=min, red=max)"),
        color=color,
    )


def render_figure5(result: SweepResult) -> str:
    """Figure 5 as a table: time normalized to the 1 B/cycle run."""
    series = figure5_series(result)
    t = TextTable(["B/cycle"] + result.impls)
    for i, p in enumerate(result.points):
        t.add_row([p] + [f"{series[impl][i]:.3f}" for impl in result.impls])
    plateaus = ", ".join(
        f"{impl}@{plateau_bandwidth(result, impl)}" for impl in result.impls
    )
    return (
        f"Figure 5 — {result.kernel}: time normalized to 1 B/cycle\n"
        + t.render()
        + f"\nplateaus (B/cycle): {plateaus}"
    )


def render_headline(h: HeadlineNumbers) -> str:
    """Side-by-side measured-vs-paper table for the Section 4.1 numbers."""
    t = TextTable(["quantity", "measured", "paper"])
    for name, measured, paper in h.rows():
        t.add_row([name, f"{measured:.2f}x", f"{paper:.2f}x"])
    return "Section 4.1 headline numbers (SpMV)\n" + t.render()


def render_counters(counters, *, label: str = "") -> str:
    """Section 3.2 counter-derived view of a :class:`HwCounters` object:
    the reading discipline (runs/mean/stddev), the characterization metrics
    (vector instruction fraction, achieved DRAM rate), and — when a run was
    attributed — where the cycles went."""
    from repro.obs.attribution import BUCKET_LABELS, BUCKET_ORDER

    t = TextTable(["counter", "value"])
    t.add_row(["runs absorbed", str(counters.runs)])
    t.add_row(["mean cycles/run", f"{counters.mean_cycles():,.0f}"])
    if counters.runs > 1:
        t.add_row(["stddev cycles", f"{counters.stddev():,.0f}"])
    t.add_row(["vector instruction fraction",
               f"{counters.vector_fraction * 100:.1f}%"])
    t.add_row(["achieved DRAM bytes/cycle",
               f"{counters.achieved_bytes_per_cycle:.2f}"])
    if counters.buckets:
        for b in BUCKET_ORDER:
            t.add_row([f"cycle share: {BUCKET_LABELS[b]}",
                       f"{counters.bucket_fraction(b) * 100:.1f}%"])
    title = "Section 3.2 counters"
    if label:
        title += f" — {label}"
    return title + "\n" + t.render()
