"""Measurement containers for the study harness."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field

from repro.engine.results import CycleReport


@dataclass(frozen=True)
class Measurement:
    """One timed run of one implementation at one knob setting."""

    kernel: str
    impl: str                 # "scalar" or "vl<N>"
    extra_latency: int
    bandwidth_bpc: int        # configured limit in bytes/cycle
    cycles: float
    report: CycleReport | None = None
    #: optional CycleAttribution (repro.obs.attribution): buckets summing
    #: bit-exactly to ``cycles``; filled by attribution-enabled sweeps.
    attribution: object | None = None

    @property
    def is_scalar(self) -> bool:
        return self.impl == "scalar"

    @property
    def vl(self) -> int | None:
        """Vector length of the implementation (None for scalar)."""
        if self.is_scalar:
            return None
        return int(self.impl[2:])


@dataclass
class SweepResult:
    """All measurements of one sweep for one kernel."""

    kernel: str
    axis: str                       # "latency" or "bandwidth"
    points: list[int]               # the swept values, in order
    impls: list[str]                # column order: "scalar", "vl8", ...
    measurements: list[Measurement] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def add(self, m: Measurement) -> None:
        self.measurements.append(m)

    def cycles(self, impl: str, point: int) -> float:
        """Measured cycles of ``impl`` at sweep value ``point``."""
        for m in self.measurements:
            key = m.extra_latency if self.axis == "latency" else m.bandwidth_bpc
            if m.impl == impl and key == point:
                return m.cycles
        raise KeyError(f"no measurement for {self.kernel}/{impl} @ {point}")

    def series(self, impl: str) -> list[float]:
        """Cycles of one implementation across all sweep points, in order."""
        return [self.cycles(impl, p) for p in self.points]

    def normalized_series(self, impl: str, *, baseline_point: int
                          ) -> list[float]:
        """Series divided by the implementation's own value at one point
        (Figure 4 normalizes to 0 extra latency, Figure 5 to 1 B/cycle)."""
        base = self.cycles(impl, baseline_point)
        return [c / base for c in self.series(impl)]

    def to_csv(self) -> str:
        """CSV with one row per sweep point, one column per implementation."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow([self.axis] + list(self.impls))
        for p in self.points:
            writer.writerow([p] + [f"{self.cycles(i, p):.1f}"
                                   for i in self.impls])
        return buf.getvalue()

    def to_json(self) -> str:
        """Schema-stable JSON: kernel/axis/points + per-impl series."""
        return json.dumps({
            "schema": "repro.sweep/1",
            "kernel": self.kernel,
            "axis": self.axis,
            "points": list(self.points),
            "impls": list(self.impls),
            "cycles": {impl: self.series(impl) for impl in self.impls},
            "meta": self.meta,
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        """Rebuild a sweep from :meth:`to_json` output."""
        data = json.loads(text)
        if data.get("schema") != "repro.sweep/1":
            raise ValueError(
                f"unsupported sweep schema {data.get('schema')!r}"
            )
        result = cls(kernel=data["kernel"], axis=data["axis"],
                     points=list(data["points"]),
                     impls=list(data["impls"]), meta=data.get("meta", {}))
        for impl in result.impls:
            for point, cycles in zip(result.points, data["cycles"][impl]):
                result.add(Measurement(
                    kernel=result.kernel, impl=impl,
                    extra_latency=point if result.axis == "latency" else 0,
                    bandwidth_bpc=point if result.axis == "bandwidth" else 64,
                    cycles=float(cycles),
                ))
        return result
