"""Workload characterization: roofline placement and traffic breakdown.

The paper motivates its kernel choice by their *non-dense* character (SpMV
"memory bound", PR "slightly more computational intensity", FFT "arithmetic
intensity and complex memory access patterns"). This module quantifies
those statements from the simulator's own data:

* :func:`characterize` — per run: FP-op count, DRAM traffic, arithmetic
  intensity (flops/DRAM byte), achieved GFLOP-equivalents per cycle, and
  the roofline bound that limits it;
* :func:`roofline_bound` — the classic min(peak-compute, AI × bandwidth)
  model for the simulated machine;
* :func:`traffic_breakdown` — where the memory references landed
  (L1/L2/DRAM) and how many bytes each level served.

Used by ``repro-sdv characterize`` and by tests asserting the paper's
Section 3.1 characterizations hold on our inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SdvConfig
from repro.engine.results import CycleReport
from repro.memory.classify import ClassifiedTrace
from repro.trace.events import ScalarBlock, VectorInstr, VOpClass
from repro.util.units import LINE_BYTES

#: rough fraction of a scalar block's ALU ops that are floating point (the
#: remainder is address arithmetic and control); used only for reporting.
SCALAR_FP_FRACTION = 0.4

#: FP ops contributed per element by each vector op class (fma counts 2)
_FP_PER_ELEM = {
    VOpClass.ARITH: 1.0,
    VOpClass.ARITH_HEAVY: 1.0,
    VOpClass.REDUCE: 1.0,
}


@dataclass(frozen=True)
class Characterization:
    """Roofline-style summary of one kernel execution."""

    kernel: str
    impl: str
    cycles: float
    fp_ops: float
    dram_bytes: float
    l1_refs: int
    l2_refs: int
    dram_refs: int

    @property
    def arithmetic_intensity(self) -> float:
        """FP ops per byte of DRAM traffic."""
        return self.fp_ops / self.dram_bytes if self.dram_bytes else float("inf")

    @property
    def flops_per_cycle(self) -> float:
        return self.fp_ops / self.cycles if self.cycles else 0.0

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bytes / self.cycles if self.cycles else 0.0


def count_fp_ops(ct: ClassifiedTrace) -> float:
    """Estimate FP operations executed by a classified trace."""
    fp = 0.0
    for rec in ct.trace:
        if isinstance(rec, ScalarBlock):
            fp += SCALAR_FP_FRACTION * rec.n_alu_ops
        elif isinstance(rec, VectorInstr):
            per_elem = _FP_PER_ELEM.get(rec.op)
            if per_elem is None:
                continue
            elems = rec.active if rec.active is not None else rec.vl
            mult = 2.0 if rec.opcode == "vfmacc" else per_elem
            # integer ops carry no FP work
            if rec.opcode.startswith(("vadd", "vsub", "vmul", "vand", "vor",
                                      "vxor", "vsll", "vsrl", "vmin", "vmax",
                                      "vid", "vmv", "vredsum", "vredmax",
                                      "vredmin")):
                continue
            fp += mult * elems
    return fp


def characterize(ct: ClassifiedTrace, report: CycleReport, *,
                 kernel: str = "", impl: str = "") -> Characterization:
    """Build the roofline summary for one timed run."""
    totals = ct.totals
    return Characterization(
        kernel=kernel,
        impl=impl,
        cycles=report.cycles,
        fp_ops=count_fp_ops(ct),
        dram_bytes=float(ct.dram_bytes),
        l1_refs=totals["l1_hits"],
        l2_refs=totals["l2_hits"],
        dram_refs=totals["dram_reads"],
    )


def peak_flops_per_cycle(config: SdvConfig, *, vector: bool) -> float:
    """Machine compute roof: lanes FMAs/cycle for the VPU, 1 for the core."""
    if vector:
        return 2.0 * config.vpu.lanes  # fma = 2 flops per lane per cycle
    return 2.0 / config.core.issue_width  # one fused op among 2 slots


def roofline_bound(config: SdvConfig, ai: float, *, vector: bool) -> float:
    """Attainable flops/cycle at arithmetic intensity ``ai``."""
    bw = config.mem.bytes_per_cycle_limit
    return min(peak_flops_per_cycle(config, vector=vector), ai * bw)


def traffic_breakdown(ct: ClassifiedTrace) -> dict[str, float]:
    """Bytes served per level (scalar refs are 8 B, lines are 64 B)."""
    t = ct.totals
    return {
        "l1_bytes": 8.0 * t["l1_hits"],
        "l2_bytes": float(LINE_BYTES * t["l2_hits"]),
        "dram_bytes": float(LINE_BYTES
                            * (t["dram_reads"] + t["dram_writes"])),
    }
