"""The zero-copy shared-memory trace plane.

The sharded sweep scheduler (:mod:`repro.core.sweeps`) splits the
re-timing of one trace across many worker processes. Shipping the trace
to each shard through the task pipe would pickle megabytes per shard;
re-loading it from the npz cache would pay decompression per shard. The
*trace plane* removes both: the process that generated (or loaded) a
sealed trace publishes its SoA columns once into a
:mod:`multiprocessing.shared_memory` segment, and every worker timing a
shard of it attaches NumPy views onto the same physical pages — no copy,
no decompression, no per-shard pickling. The prepared workload rides the
same plane as one pickled blob, published once per (kernel, workload)
instead of once per task.

Segment layout (version 1)::

    magic "RPLN1" | uint64 meta_len | meta JSON | 64-byte-aligned arrays

The meta JSON carries ``(name, dtype, shape, offset)`` for every column
of :class:`repro.trace.events.TraceColumns` plus the ``\\0``-joined
intern table, so :func:`TracePlane.attach_trace` rebuilds a sealed
:class:`~repro.trace.events.TraceBuffer` with ``np.ndarray(buffer=...)``
views — the attach cost is a page-table mapping, independent of trace
size.

Lifecycle protocol (per-process refcounts, owner-side unlink):

* ``publish_*`` creates a segment and records the caller as its
  *publisher*; publishing the same key twice on one plane is idempotent
  (the first segment is returned).
* ``attach_*`` maps a segment by :class:`PlaneRef` and bumps a
  per-process refcount; a plane that published or already attached a
  segment serves the same object back without re-mapping (so every shard
  of a trace in one worker shares one mapping *and* its
  classification/lowering/event-plan caches).
* ``detach`` drops one reference; a zero-ref mapping becomes *evictable*
  but stays cached until LRU pressure closes it, so a long-lived worker
  neither accumulates mappings across sweeps nor loses the per-trace
  plan caches between consecutive shards of the same trace.
* ``adopt`` transfers unlink responsibility to the caller (the sweep
  parent adopts segments its workers published); ``release`` /
  ``unlink_all`` unlink adopted + published segments.

Crash cleanup is layered: ``unlink_all`` runs at interpreter exit
(:mod:`atexit`); every segment name carries the owning parent's pid in
its prefix, and on platforms that expose ``/dev/shm`` the owner's exit
hook additionally sweeps any same-prefix segment a crashed worker
published but never reported. CPython's ``resource_tracker`` remains the
last line for a hard-killed process tree.

Everything degrades gracefully: any ``OSError`` while publishing (no
``/dev/shm``, exhausted segment space, sandbox seccomp) marks the plane
unusable and returns ``None``, and callers fall back to the
copy/reload paths exactly like :func:`repro.core.parallel.run_tasks`
falls back to serial execution. ``REPRO_NO_SHM=1`` disables the plane
outright.
"""

from __future__ import annotations

import atexit
import json
import os
import pickle
import uuid
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import TraceError
from repro.trace.events import TraceBuffer, TraceColumns

_MAGIC = b"RPLN1"
_CMAGIC = b"RPCL1"
_ALIGN = 64

#: every fixed-width TraceColumns array, in segment order; ``strings``
#: travels as one \0-joined utf-8 blob (same trick as serialize.py v2).
_TRACE_ARRAYS = (
    "kind", "n_alu", "mlp", "mem_bytes", "vl", "active", "opclass",
    "pattern", "is_write", "masked", "dep", "scalar_dest",
    "opcode_id", "label_id", "addr_off", "addrs", "writes",
)

#: bound on cached attachments per process — must exceed one sweep's
#: implementation count (scalar + six VLs) *times two* now that every
#: trace segment travels with a classified sibling, or mid-sweep
#: eviction thrashes the per-trace plan caches; evicted mappings are
#: closed, not unlinked
ATTACH_CAP = 32

#: runtime-sanitizer hook: a ``repro.lint.sanitize.ShadowTracker`` when
#: ``REPRO_SANITIZE=1`` (installed at the bottom of this module), else
#: ``None`` — the disabled cost is one global load per lifecycle call
_sanitizer: Any = None

#: names this process already unlinked: the already-released fast path
#: that makes :func:`_raw_unlink` idempotent without re-probing the OS
_UNLINKED: set[str] = set()
_UNLINKED_CAP = 8192


def shm_available() -> bool:
    """Best-effort availability probe (also honours ``REPRO_NO_SHM``)."""
    if os.environ.get("REPRO_NO_SHM"):
        return False
    try:
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=16)
    except (ImportError, OSError, PermissionError, NotImplementedError):
        return False
    try:
        seg.close()
        seg.unlink()
    except OSError:
        pass
    return True


@dataclass(frozen=True)
class PlaneRef:
    """Picklable handle to one published segment (what task tuples carry)."""

    name: str       # shared-memory segment name
    key: str        # content key it was published under
    kind: str       # "trace" | "classified" | "bytes"
    size: int       # payload bytes (segment may be page-rounded larger)
    records: int = 0  # trace records (cost-model input; 0 for blobs)


class _Attachment:
    """One mapped segment in this process."""

    __slots__ = ("shm", "obj", "refs", "published")

    def __init__(self, shm: Any, obj: Any, *, published: bool = False) -> None:
        self.shm = shm
        self.obj = obj          # TraceBuffer or bytes, lazily built
        self.refs = 1
        self.published = published


def _pad(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _untrack(shm: Any) -> None:
    """Withdraw a segment from CPython's resource tracker.

    Before 3.13 (``track=False``), creating *or attaching* a POSIX
    segment registers it with the process's resource tracker, which
    unlinks everything still registered when the process exits — so a
    helper subprocess finishing early would yank a plane segment out
    from under a running sweep, and double registration through a
    fork-shared tracker turns the owner's unlink into stderr noise.
    The plane therefore keeps the tracker out of the picture entirely:
    segments are untracked the moment they are created, attachments map
    the segment below the :class:`SharedMemory` layer, and cleanup is
    wholly owned by the plane (refcounts + ``atexit`` + the
    pid-prefixed stale-segment purge).
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class _Mapping:
    """A tracker-free mapping of an existing POSIX segment (duck-typed
    to the slice of ``SharedMemory`` the plane uses)."""

    __slots__ = ("name", "_mmap", "buf")

    def __init__(self, name: str, mm: Any) -> None:
        self.name = name
        self._mmap = mm
        self.buf = memoryview(mm)

    def close(self) -> None:
        self.buf.release()
        self._mmap.close()

    def unlink(self) -> None:
        _raw_unlink(self.name)


def _open_segment(name: str) -> Any:
    """Attach to an existing segment without tracker side effects."""
    try:
        import mmap as _mmap_mod

        import _posixshmem

        fd = _posixshmem.shm_open(f"/{name}", os.O_RDWR, 0o600)
    except (ImportError, AttributeError):
        # no POSIX shm primitives: attach through SharedMemory and
        # withdraw the registration it just made
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        return shm
    try:
        size = os.fstat(fd).st_size
        mm = _mmap_mod.mmap(fd, size)
    finally:
        os.close(fd)
    return _Mapping(name, mm)


def _raw_unlink(name: str) -> None:
    """Remove a segment's name (idempotent, no tracker interaction).

    A name this process already unlinked returns on an explicit fast
    path instead of re-probing the OS; the EAFP handling below still
    backstops names other processes removed. The sanitizer sees the
    attempt *before* the fast path — a second unlink is a caller bug
    (R103) even when it is absorbed here.
    """
    first = name not in _UNLINKED
    if _sanitizer is not None:
        _sanitizer.note_unlink(name, first=first)
    if not first:
        return
    if len(_UNLINKED) >= _UNLINKED_CAP:
        _UNLINKED.clear()  # bound memory; the EAFP path below backstops
    _UNLINKED.add(name)
    try:
        import _posixshmem

        _posixshmem.shm_unlink(f"/{name}")
        return
    except FileNotFoundError:
        return
    except (ImportError, AttributeError, OSError):
        pass
    try:
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(name=name)
    except Exception:
        return
    try:
        seg.unlink()
    except OSError:
        pass
    try:
        seg.close()
    except (OSError, BufferError):
        pass


class TracePlane:
    """Per-process view of the shared-memory trace plane."""

    def __init__(self, *, enabled: bool | None = None) -> None:
        if enabled is None:
            enabled = not os.environ.get("REPRO_NO_SHM")
        self.enabled = enabled
        self.owner_pid = os.getpid()
        #: segments this process must unlink (published here or adopted)
        self._owned: dict[str, object] = {}
        #: key -> PlaneRef for publish idempotence
        self._by_key: dict[str, PlaneRef] = {}
        #: name -> _Attachment (mapped segments, LRU order)
        self._attached: dict[str, _Attachment] = {}
        self.stats = {
            "publishes": 0, "attaches": 0, "bytes_published": 0,
            "bytes_attached": 0, "unlinks": 0,
        }

    # ------------------------------------------------------------ publishing

    def _new_segment(self, prefix: str, size: int) -> Any:
        from multiprocessing import shared_memory

        name = f"{prefix}{uuid.uuid4().hex[:12]}"
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(size, 1))
        _untrack(shm)  # cleanup is the plane's job, not the tracker's
        return shm

    def publish_trace(self, key: str, trace: TraceBuffer, *,
                      prefix: str, transfer: bool = False) -> PlaneRef | None:
        """Publish a sealed trace's columns; returns its ref (idempotent
        per key) or ``None`` when the plane is unusable."""
        if not self.enabled:
            return None
        hit = self._by_key.get(key)
        if hit is not None:
            return hit
        if not trace.sealed:
            raise TraceError("only sealed traces can be published")
        c = trace.cols
        for s in c.strings:
            if "\0" in s:
                raise TraceError(f"string table entry contains NUL: {s!r}")
        strings_blob = "\0".join(c.strings).encode("utf-8")
        arrays = [(n, np.ascontiguousarray(getattr(c, n)))
                  for n in _TRACE_ARRAYS]
        meta_arrays = []
        payload = 0
        for n, a in arrays:
            meta_arrays.append({"name": n, "dtype": a.dtype.str,
                                "shape": list(a.shape), "offset": 0})
            payload += a.nbytes
        meta = {"version": 1, "records": len(trace), "arrays": meta_arrays,
                "strings_len": len(strings_blob)}
        # two passes: sizing the JSON changes its length, so lay arrays
        # out after a fixed-size header computed from the final JSON
        blob = json.dumps(meta).encode()
        off = _pad(len(_MAGIC) + 8 + len(blob) + 8 + len(strings_blob))
        # offsets are absolute; rebuild meta with them and re-measure —
        # offset digits can grow the JSON, so pad the header generously
        header_guess = _pad(off + 128 * len(arrays))
        off = header_guess
        for m, (n, a) in zip(meta_arrays, arrays):
            m["offset"] = off
            off += _pad(a.nbytes)
        total = off + _ALIGN  # slack so a trailing 0-byte array's offset
        blob = json.dumps(meta).encode()  # stays strictly inside the buffer
        if len(_MAGIC) + 8 + len(blob) + 8 + len(strings_blob) > header_guess:
            raise TraceError("trace-plane header overflow")  # unreachable
        try:
            shm = self._new_segment(prefix, total)
        except (OSError, PermissionError, ValueError) as exc:
            self._disable(exc)
            return None
        buf = shm.buf
        p = 0
        buf[p:p + len(_MAGIC)] = _MAGIC
        p += len(_MAGIC)
        buf[p:p + 8] = len(blob).to_bytes(8, "little")
        p += 8
        buf[p:p + len(blob)] = blob
        p += len(blob)
        buf[p:p + 8] = len(strings_blob).to_bytes(8, "little")
        p += 8
        buf[p:p + len(strings_blob)] = strings_blob
        for m, (n, a) in zip(meta_arrays, arrays):
            if a.nbytes:
                dst = np.ndarray(a.shape, dtype=a.dtype, buffer=buf,
                                 offset=m["offset"])
                dst[...] = a
        ref = PlaneRef(name=shm.name, key=key, kind="trace",
                       size=total, records=len(trace))
        self._register_published(ref, shm, trace, transfer)
        return ref

    def publish_classified(self, key: str, ct: Any, *, prefix: str,
                           transfer: bool = False) -> PlaneRef | None:
        """Publish a knob-independent classification so phase-B shards
        attach it zero-copy instead of reclassifying per shard.

        Segment layout (version 1)::

            magic "RPCL1" | uint64 meta_len | meta JSON | aligned arrays

        ``ct`` is a :class:`repro.memory.classify.ClassifiedTrace`: its
        columnar ``rows`` travel with their structured dtype descr in
        the meta (the attach side rebuilds the dtype from the segment,
        not from import-time agreement), and the ragged per-record
        ``levels`` list is flattened into one uint8 stream plus a
        per-record length vector where ``-1`` marks records that carry
        no level data (barriers, vector arithmetic).
        """
        if not self.enabled:
            return None
        hit = self._by_key.get(key)
        if hit is not None:
            return hit
        from repro.memory.classify_fast import pack_levels

        rows = np.ascontiguousarray(ct.rows)
        n = int(rows.shape[0])
        lens, flat = pack_levels(ct.levels)
        arrays = [("rows", rows), ("lens", lens), ("flat", flat)]
        meta_arrays = []
        for aname, a in arrays:
            if a.dtype.names:
                dt: Any = [list(f) for f in a.dtype.descr]
            else:
                dt = a.dtype.str
            meta_arrays.append({"name": aname, "dtype": dt,
                                "shape": list(a.shape), "offset": 0})
        meta = {"version": 1, "records": n, "arrays": meta_arrays}
        blob = json.dumps(meta).encode()
        off = _pad(len(_CMAGIC) + 8 + len(blob))
        # absolute offsets can grow the JSON; pad the header generously
        header_guess = _pad(off + 128 * len(arrays))
        off = header_guess
        for m, (aname, a) in zip(meta_arrays, arrays):
            m["offset"] = off
            off += _pad(a.nbytes)
        total = off + _ALIGN
        blob = json.dumps(meta).encode()
        if len(_CMAGIC) + 8 + len(blob) > header_guess:
            raise TraceError(
                "classified-plane header overflow")  # unreachable
        try:
            shm = self._new_segment(prefix, total)
        except (OSError, PermissionError, ValueError) as exc:
            self._disable(exc)
            return None
        buf = shm.buf
        p = 0
        buf[p:p + len(_CMAGIC)] = _CMAGIC
        p += len(_CMAGIC)
        buf[p:p + 8] = len(blob).to_bytes(8, "little")
        p += 8
        buf[p:p + len(blob)] = blob
        for m, (aname, a) in zip(meta_arrays, arrays):
            if a.nbytes:
                dst = np.ndarray(a.shape, dtype=a.dtype, buffer=buf,
                                 offset=m["offset"])
                dst[...] = a
        ref = PlaneRef(name=shm.name, key=key, kind="classified",
                       size=total, records=n)
        # memoize the original object so the publisher's own attach
        # requests cost nothing
        self._register_published(ref, shm, ct, transfer)
        return ref

    def publish_bytes(self, key: str, payload: bytes, *,
                      prefix: str, transfer: bool = False) -> PlaneRef | None:
        """Publish one opaque blob (e.g. a pickled workload), once."""
        if not self.enabled:
            return None
        hit = self._by_key.get(key)
        if hit is not None:
            return hit
        try:
            shm = self._new_segment(prefix, len(payload))
        except (OSError, PermissionError, ValueError) as exc:
            self._disable(exc)
            return None
        shm.buf[:len(payload)] = payload
        ref = PlaneRef(name=shm.name, key=key, kind="bytes",
                       size=len(payload))
        self._register_published(ref, shm, bytes(payload), transfer)
        return ref

    def _register_published(self, ref: PlaneRef, shm: Any, obj: Any,
                            transfer: bool = False) -> None:
        """Record a fresh segment. With ``transfer=True`` the publisher
        disclaims unlink responsibility — the segment is destined for
        another process (the sweep parent ``adopt``s it from a phase-A
        worker), and the publisher only keeps a cached zero-ref mapping
        so it can serve its own attach requests."""
        if os.getpid() != self.owner_pid:
            # a forked worker inherited this plane object: it is a fresh
            # plane in spirit — reset ownership so the worker only ever
            # unlinks what it published itself
            self._reset_for_child()
        self._by_key[ref.key] = ref
        att = _Attachment(shm, obj, published=True)
        if transfer:
            att.refs = 0
        else:
            self._owned[ref.name] = shm
        self._attached[ref.name] = att
        self.stats["publishes"] += 1
        self.stats["bytes_published"] += ref.size
        if _sanitizer is not None:
            _sanitizer.note_publish(ref.name, ref.key, ref.size, transfer)
        self._evict()

    def _reset_for_child(self) -> None:
        self.owner_pid = os.getpid()
        self._owned = {}
        self._by_key = {}
        self._attached = {}

    def _disable(self, exc: BaseException) -> None:
        self.enabled = False
        try:
            from repro.obs.metrics import get_metrics
            from repro.obs.runlog import get_runlog

            get_metrics().counter("shm.plane_disabled").inc()
            get_runlog().event("shm.plane_disabled", level="warn",
                               error=f"{type(exc).__name__}: {exc}")
        except Exception:
            pass

    # ------------------------------------------------------------- attaching

    def attach_trace(self, ref: PlaneRef) -> TraceBuffer | None:
        """Map a published trace; returns the (process-cached) sealed
        buffer backed by zero-copy views, or ``None`` if unattachable."""
        att = self._attach(ref)
        if att is None:
            return None
        if not isinstance(att.obj, TraceBuffer):
            att.obj = self._build_trace(att.shm)
        return att.obj

    def attach_classified(self, ref: PlaneRef, trace: TraceBuffer,
                          config: Any) -> Any | None:
        """Map a published classification and rebuild a
        :class:`~repro.memory.classify.ClassifiedTrace` whose ``rows``
        and ``levels`` arrays are zero-copy views into the segment
        (process-cached, like :meth:`attach_trace`). ``trace`` and
        ``config`` rebind the non-array fields; callers that sweep
        knobs re-bind ``config`` again via ``dataclasses.replace``
        exactly like :meth:`repro.soc.sdv.FpgaSdv.classify` does.
        Returns ``None`` when the segment is unattachable."""
        from repro.memory.classify import ClassifiedTrace

        att = self._attach(ref)
        if att is None:
            return None
        if not isinstance(att.obj, ClassifiedTrace):
            att.obj = self._build_classified(att.shm, trace, config)
        return att.obj

    def _build_classified(self, shm: Any, trace: TraceBuffer,
                          config: Any) -> Any:
        from repro.memory.classify import ClassifiedTrace

        buf = shm.buf
        if bytes(buf[:len(_CMAGIC)]) != _CMAGIC:
            raise TraceError(f"segment {shm.name} is not a classified-"
                             "plane segment (bad magic)")
        p = len(_CMAGIC)
        meta_len = int.from_bytes(buf[p:p + 8], "little")
        p += 8
        meta = json.loads(bytes(buf[p:p + meta_len]))
        arrs: dict[str, np.ndarray] = {}
        for m in meta["arrays"]:
            d = m["dtype"]
            if isinstance(d, list):  # structured dtype descr
                dt = np.dtype([(str(f[0]), str(f[1])) if len(f) == 2
                               else (str(f[0]), str(f[1]), tuple(f[2]))
                               for f in d])
            else:
                dt = np.dtype(d)
            arrs[m["name"]] = np.ndarray(
                tuple(m["shape"]), dtype=dt, buffer=buf,
                offset=m["offset"])
        from repro.memory.classify_fast import unpack_levels

        levels = unpack_levels(arrs["lens"], arrs["flat"])
        return ClassifiedTrace(rows=arrs["rows"], levels=levels,
                               trace=trace, config=config)

    def attach_bytes(self, ref: PlaneRef) -> bytes | None:
        """Read a published blob (one copy out of the segment)."""
        att = self._attach(ref)
        if att is None:
            return None
        if att.obj is not None and not isinstance(att.obj, bytes):
            raise TraceError(f"segment {ref.name} holds a "
                             f"{type(att.obj).__name__}, not bytes")
        if att.obj is None:
            att.obj = bytes(att.shm.buf[:ref.size])
        return att.obj

    @contextmanager
    def attached_trace(self, ref: PlaneRef) -> Iterator[TraceBuffer | None]:
        """Scoped :meth:`attach_trace`: the reference is dropped on block
        exit, so the mapping can never outlive its use by accident.
        Views built inside stay valid as long as the mapping itself
        survives — e.g. when the caller also adopted the ref, which pins
        the mapping until ``release``."""
        obj = self.attach_trace(ref)
        try:
            yield obj
        finally:
            self.detach(ref)  # no-op when the attach failed

    @contextmanager
    def attached_bytes(self, ref: PlaneRef) -> Iterator[bytes | None]:
        """Scoped :meth:`attach_bytes` (the blob is a copy, so it stays
        usable after the block)."""
        obj = self.attach_bytes(ref)
        try:
            yield obj
        finally:
            self.detach(ref)  # no-op when the attach failed

    def _attach(self, ref: PlaneRef) -> _Attachment | None:
        att = self._attached.pop(ref.name, None)
        if att is not None:
            att.refs += 1
            self._attached[ref.name] = att  # LRU re-insert at tail
            self.stats["attaches"] += 1
            if _sanitizer is not None:
                _sanitizer.note_attach(ref.name, ref.size)
            return att
        try:
            shm = _open_segment(ref.name)
        except (OSError, PermissionError, ValueError):
            return None
        att = _Attachment(shm, None)
        self._attached[ref.name] = att
        self.stats["attaches"] += 1
        self.stats["bytes_attached"] += ref.size
        if _sanitizer is not None:
            _sanitizer.note_attach(ref.name, ref.size)
        self._evict()
        return att

    def _build_trace(self, shm: Any) -> TraceBuffer:
        buf = shm.buf
        if bytes(buf[:len(_MAGIC)]) != _MAGIC:
            raise TraceError(f"segment {shm.name} is not a trace-plane "
                             "trace (bad magic)")
        p = len(_MAGIC)
        meta_len = int.from_bytes(buf[p:p + 8], "little")
        p += 8
        meta = json.loads(bytes(buf[p:p + meta_len]))
        p += meta_len
        strings_len = int.from_bytes(buf[p:p + 8], "little")
        p += 8
        strings = bytes(buf[p:p + strings_len]).decode("utf-8").split("\0")
        cols = {}
        for m in meta["arrays"]:
            cols[m["name"]] = np.ndarray(
                tuple(m["shape"]), dtype=np.dtype(m["dtype"]),
                buffer=buf, offset=m["offset"])
        return TraceBuffer.from_columns(
            TraceColumns(strings=strings, **cols))

    def detach(self, ref: PlaneRef) -> None:
        """Drop one reference. A zero-ref mapping is *evictable*, not
        closed: it stays cached (with its trace's classification and
        event-plan caches) until LRU pressure or ``unlink_all`` closes
        it — the memoization that lets every shard of a trace in one
        worker share one mapping."""
        att = self._attached.get(ref.name)
        if att is not None:
            att.refs = max(0, att.refs - 1)
            if _sanitizer is not None:
                _sanitizer.note_detach(ref.name)
            self._evict()

    def _evict(self) -> None:
        if len(self._attached) <= ATTACH_CAP:
            return
        # never evict in-use or owned mappings (their unlink is still
        # pending on this process); transferred publishes are fair game
        evictable = [n for n, a in self._attached.items()
                     if a.refs <= 0 and n not in self._owned]
        while len(self._attached) > ATTACH_CAP and evictable:
            name = evictable.pop(0)
            self._close(self._attached.pop(name))
            self._by_key = {k: r for k, r in self._by_key.items()
                            if r.name != name}

    @staticmethod
    def _close(att: _Attachment) -> None:
        att.obj = None  # views into the buffer die with the object
        try:
            att.shm.close()
        except (OSError, BufferError, ValueError):
            # a caller still holds views into the buffer; the mapping
            # closes when they are garbage collected
            pass

    # -------------------------------------------------------------- lifecycle

    def adopt(self, ref: PlaneRef) -> bool:
        """Take unlink responsibility for a segment a worker published
        (the sweep parent calls this as phase-A results arrive)."""
        if ref.name in self._owned:
            return True
        att = self._attach(ref)
        if att is None:
            return False
        self._owned[ref.name] = att.shm
        self._by_key.setdefault(ref.key, ref)
        if _sanitizer is not None:
            _sanitizer.note_adopt(ref.name)
        return True

    def release(self, ref: PlaneRef) -> None:
        """Unlink one owned segment (idempotent; a non-owned ref is only
        closed, never unlinked — that is its owner's job)."""
        if _sanitizer is not None:
            _sanitizer.note_release(ref.name, ref.name in self._owned)
        shm = self._owned.pop(ref.name, None)
        att = self._attached.pop(ref.name, None)
        self._by_key.pop(ref.key, None)
        if shm is None:
            if att is not None:
                self._close(att)
            return
        _raw_unlink(ref.name)
        self.stats["unlinks"] += 1
        if att is not None:
            self._close(att)
        else:
            try:
                shm.close()
            except (OSError, BufferError, ValueError):
                pass

    def unlink_all(self) -> None:
        """Unlink every owned segment and close every mapping."""
        for name, shm in list(self._owned.items()):
            att = self._attached.pop(name, None)
            self._owned.pop(name, None)
            _raw_unlink(name)
            self.stats["unlinks"] += 1
            if att is not None:
                self._close(att)
            else:
                try:
                    shm.close()
                except (OSError, BufferError, ValueError):
                    pass
        for name in list(self._attached):
            self._close(self._attached.pop(name))
        self._by_key.clear()



# ------------------------------------------------------------------ globals

#: the per-process plane (lazily created; workers inherit a fresh one)
_plane: TracePlane | None = None


def get_plane() -> TracePlane:
    global _plane
    if _plane is None:
        _plane = TracePlane()
        if _plane.enabled:
            purge_stale()  # sweep leftovers of SIGKILLed earlier runs
    return _plane


def reset_worker_plane() -> None:
    """Give a forked pool worker a fresh plane.

    A forked child inherits the parent's plane object — including the
    parent's ownership table, which the child must never unlink. Worker
    initializers call this; it is a no-op in the owning process itself
    (``run_tasks`` also runs initializers in-process before a serial
    fallback).
    """
    global _plane
    if _plane is not None and _plane.owner_pid != os.getpid():
        _plane = TracePlane()


def plane_prefix() -> str:
    """Segment-name prefix carrying the sweep parent's pid: workers
    publish under it, and crash cleanup can sweep by it."""
    return f"repro-plane-{os.getpid()}-"


def purge_prefix(prefix: str) -> int:
    """Best-effort sweep of leftover same-prefix segments (crashed
    workers published them but the parent never saw a ref). Only
    meaningful where the OS exposes segments as files (``/dev/shm``)."""
    shm_dir = "/dev/shm"
    removed = 0
    ours = prefix == plane_prefix()
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return 0
    for fname in names:
        if fname.startswith(prefix):
            if _sanitizer is not None:
                _sanitizer.note_purge(fname, ours)
            _raw_unlink(fname)
            removed += 1
    return removed


def purge_stale(prefix: str = "repro-plane-") -> int:
    """Unlink plane segments whose embedded owner pid is dead.

    The last cleanup layer: a SIGKILLed process tree runs no atexit
    hook, so its segments survive in ``/dev/shm``. Every plane name
    embeds its owner's pid (:func:`plane_prefix`); the next process to
    create a plane sweeps names whose owner no longer exists. Segments
    of live pids — including other concurrent repro runs — are left
    alone.
    """
    removed = 0
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return 0
    for fname in names:
        if not fname.startswith(prefix):
            continue
        pid_s = fname[len(prefix):].split("-", 1)[0]
        if not pid_s.isdigit() or int(pid_s) == os.getpid():
            continue
        try:
            os.kill(int(pid_s), 0)
        except ProcessLookupError:
            if _sanitizer is not None:
                _sanitizer.note_purge(fname, False)
            _raw_unlink(fname)
            removed += 1
        except OSError:
            continue  # pid alive (or not ours to probe): leave it
    return removed


def _atexit_cleanup() -> None:
    if _plane is not None and os.getpid() == _plane.owner_pid:
        _plane.unlink_all()
        purge_prefix(plane_prefix())


atexit.register(_atexit_cleanup)


# --------------------------------------------------------------- workload IO

def publish_workload(workload: Any, fingerprint: str, *,
                     payload: bytes | None = None,
                     transfer: bool = False) -> PlaneRef | None:
    """Publish one prepared workload's pickle under its content key.

    ``payload`` lets the caller reuse the pickle it already produced for
    :func:`repro.core.sweeps.workload_fingerprint` instead of pickling
    twice.
    """
    plane = get_plane()
    if payload is None:
        payload = pickle.dumps(workload, protocol=4)
    return plane.publish_bytes(f"workload:{fingerprint}", payload,
                               prefix=plane_prefix(), transfer=transfer)


#: per-process memo of unpickled workloads, keyed by segment name —
#: every phase-A task of a sweep shares one deserialization per worker
_WORKLOAD_MEMO: dict[str, object] = {}
_WORKLOAD_MEMO_CAP = 4


def attach_workload(ref: PlaneRef) -> Any:
    """Unpickle a published workload (memoized per process); ``None``
    when the segment is gone or the plane is unusable. The attachment is
    scoped: the blob is copied out, so nothing needs to keep the mapping
    pinned once the pickle is decoded."""
    hit = _WORKLOAD_MEMO.get(ref.name)
    if hit is not None:
        return hit
    with get_plane().attached_bytes(ref) as data:
        if data is None:
            return None
        obj = pickle.loads(data)
    while len(_WORKLOAD_MEMO) >= _WORKLOAD_MEMO_CAP:
        _WORKLOAD_MEMO.pop(next(iter(_WORKLOAD_MEMO)))
    _WORKLOAD_MEMO[ref.name] = obj
    return obj


# ---------------------------------------------------------------- sanitizer

if os.environ.get("REPRO_SANITIZE"):
    # installs the shadow tracker into this module's ``_sanitizer`` hook
    # (and repro.core.parallel's), takes over the atexit slot so leak
    # evaluation brackets the cleanup above, and arranges per-worker
    # dumps; see repro.lint.sanitize
    from repro.lint import sanitize as _sanitize_mod

    _sanitize_mod.install(os.environ.get("REPRO_SANITIZE_DIR"))
