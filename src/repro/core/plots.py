"""Terminal line plots for the paper's figures.

The paper presents Figures 3 and 5 as line plots — scalar in blue, vector
VLs in a red gradient. This module renders the same series as Unicode
braille-dot plots for terminals (no matplotlib available offline), with the
paper's color convention when ANSI is enabled: the scalar series in blue,
vector series in a light→dark red ramp with growing VL.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.core.figures import figure3_series, figure5_series
from repro.core.measurements import SweepResult
from repro.errors import ReproError

_RESET = "\x1b[0m"
_BLUE = "\x1b[38;5;33m"
#: light -> dark red ramp (256-color codes), the paper's VL gradient
_RED_RAMP = ("\x1b[38;5;217m", "\x1b[38;5;210m", "\x1b[38;5;203m",
             "\x1b[38;5;196m", "\x1b[38;5;160m", "\x1b[38;5;124m",
             "\x1b[38;5;88m")

#: per-series glyphs when color is off (blue=scalar first)
_MARKERS = "*o+x#%@&"


def series_style(impls: Sequence[str]) -> dict[str, tuple[str, str]]:
    """impl -> (ansi color, fallback marker), paper color convention."""
    out: dict[str, tuple[str, str]] = {}
    reds = 0
    vector_impls = [i for i in impls if i != "scalar"]
    for k, impl in enumerate(impls):
        if impl == "scalar":
            out[impl] = (_BLUE, _MARKERS[0])
        else:
            # spread the ramp over however many VLs are plotted
            pos = (vector_impls.index(impl) * (len(_RED_RAMP) - 1)
                   // max(1, len(vector_impls) - 1))
            out[impl] = (_RED_RAMP[pos], _MARKERS[1 + reds % 7])
            reds += 1
    return out


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(frac * (cells - 1)))))


def ascii_plot(
    x_labels: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    ylabel: str = "",
    color: bool = False,
    logy: bool = False,
) -> str:
    """Render named series over a shared categorical x-axis.

    Each series must have exactly ``len(x_labels)`` points. Values may span
    decades (Figure 3 does); ``logy`` plots their log10.
    """
    n = len(x_labels)
    if n < 2:
        raise ReproError("need at least two x points to plot")
    for name, ys in series.items():
        if len(ys) != n:
            raise ReproError(f"series '{name}' has {len(ys)} points, "
                             f"x-axis has {n}")
    transform = (lambda v: math.log10(max(v, 1e-12))) if logy else float
    values = [transform(v) for ys in series.values() for v in ys]
    lo, hi = min(values), max(values)

    grid = [[" "] * width for _ in range(height)]
    styles = series_style(list(series))
    for name, ys in series.items():
        ansi, marker = styles.get(name, ("", "?"))
        glyph = f"{ansi}{marker}{_RESET}" if color else marker
        prev = None
        for i, y in enumerate(ys):
            col = _scale(i, 0, n - 1, width)
            row = height - 1 - _scale(transform(y), lo, hi, height)
            grid[row][col] = glyph
            # connect with a sparse vertical run for readability
            if prev is not None:
                pcol, prow = prev
                for r in range(min(prow, row) + 1, max(prow, row)):
                    mid = (pcol + col) // 2
                    if grid[r][mid] == " ":
                        grid[r][mid] = "." if not color else \
                            f"{ansi}.{_RESET}"
            prev = (col, row)

    lines = []
    if title:
        lines.append(title)
    top = f"{10 ** hi:.3g}" if logy else f"{hi:.3g}"
    bottom = f"{10 ** lo:.3g}" if logy else f"{lo:.3g}"
    margin = max(len(top), len(bottom), len(ylabel)) + 1
    for r, row in enumerate(grid):
        if r == 0:
            label = top
        elif r == height - 1:
            label = bottom
        elif r == height // 2 and ylabel:
            label = ylabel
        else:
            label = ""
        lines.append(label.rjust(margin) + "|" + "".join(row))
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    first, last = str(x_labels[0]), str(x_labels[-1])
    pad = width - len(first) - len(last)
    lines.append(" " * (margin + 1) + first + " " * max(1, pad) + last)
    legend = "  ".join(
        (f"{styles[name][0]}{styles[name][1]}{_RESET}" if color
         else styles[name][1]) + f"={name}"
        for name in series
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


def plot_figure3(result: SweepResult, *, color: bool = False,
                 width: int = 64, height: int = 16) -> str:
    """Figure 3 as a terminal plot: kcycles (log scale) vs extra latency."""
    series = {impl: [v / 1e3 for v in ys]
              for impl, ys in figure3_series(result).items()}
    return ascii_plot(
        result.points, series, width=width, height=height, color=color,
        title=f"Figure 3 — {result.kernel}: kcycles vs extra latency "
              "(log y)",
        ylabel="kcyc", logy=True,
    )


def plot_figure5(result: SweepResult, *, color: bool = False,
                 width: int = 64, height: int = 16) -> str:
    """Figure 5 as a terminal plot: normalized time vs bandwidth limit."""
    return ascii_plot(
        result.points, figure5_series(result), width=width, height=height,
        color=color,
        title=f"Figure 5 — {result.kernel}: time normalized to 1 B/cycle",
        ylabel="t/t1",
    )
