"""The study harness — the paper's experimental methodology as a library.

This package is the "primary contribution" layer: given the simulated
FPGA-SDV and the four kernels, it runs the paper's three sweeps and renders
the paper's figures/tables:

* :mod:`sweeps` — latency sweep (Section 4.1), bandwidth sweep (Section
  4.2), and VL sweep; one trace per implementation, batch-engine re-timing
  of all sweep points at once, optional on-disk trace cache;
* :mod:`parallel` — process-pool fan-out of trace generation (``jobs=N``);
* :mod:`measurements` — result containers, CSV export;
* :mod:`figures` — Figure 3 (time vs latency), Figure 4 (normalized
  slowdown heat tables), Figure 5 (normalized time vs bandwidth), plus the
  headline numbers quoted in the text;
* :mod:`report` — plain-text rendering of everything above;
* :mod:`plots` — terminal line plots with the paper's color convention;
* :mod:`analysis` — roofline placement and traffic breakdown per run.
"""

from repro.core.measurements import Measurement, SweepResult
from repro.core.parallel import (
    default_jobs,
    resolve_jobs,
    run_tasks,
    shutdown_pool,
)
from repro.core.sweeps import (
    DEFAULT_BANDWIDTHS,
    DEFAULT_LATENCIES,
    DEFAULT_SWEEP_ENGINE,
    DEFAULT_VLS,
    bandwidth_sweep,
    latency_sweep,
    run_implementation,
    vl_sweep,
    workload_fingerprint,
)
from repro.core.figures import (
    figure3_series,
    figure4_table,
    figure5_series,
    headline_numbers,
    plateau_bandwidth,
)
from repro.core.report import render_figure3, render_figure4, render_figure5
from repro.core.plots import ascii_plot, plot_figure3, plot_figure5
from repro.core.analysis import (
    Characterization,
    characterize,
    roofline_bound,
    traffic_breakdown,
)
from repro.core.compare import (
    ConfigComparison,
    WhatIf,
    compare_configs,
    compare_sweeps,
)

__all__ = [
    "Measurement",
    "SweepResult",
    "DEFAULT_BANDWIDTHS",
    "DEFAULT_LATENCIES",
    "DEFAULT_SWEEP_ENGINE",
    "DEFAULT_VLS",
    "bandwidth_sweep",
    "default_jobs",
    "latency_sweep",
    "resolve_jobs",
    "run_implementation",
    "run_tasks",
    "shutdown_pool",
    "vl_sweep",
    "workload_fingerprint",
    "figure3_series",
    "figure4_table",
    "figure5_series",
    "headline_numbers",
    "plateau_bandwidth",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "ascii_plot",
    "plot_figure3",
    "plot_figure5",
    "Characterization",
    "characterize",
    "roofline_bound",
    "traffic_breakdown",
    "ConfigComparison",
    "WhatIf",
    "compare_configs",
    "compare_sweeps",
]
