"""Process-pool fan-out for trace generation.

A paper sweep re-times cheaply (the batch engine) but still has to
*generate* one trace per (kernel, implementation) pair — functional
execution of the kernel through the RVV intrinsics layer, the expensive
stage of the pipeline. Those generations are independent, so the sweep
harness fans them out across worker processes.

Workers receive (kernel-name, workload, knobs) task tuples, rebuild the
spec from the :data:`repro.kernels.KERNELS` registry, and return only the
finished :class:`repro.core.measurements.Measurement` rows — traces never
cross the process boundary (they are large; measurements are tiny).

``run_tasks`` degrades gracefully: if the platform cannot spawn worker
processes (sandboxes without fork/semaphores) or a worker pool fails to
come up, it falls back to in-process execution so ``jobs=N`` is always
safe to request.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """Worker count for ``jobs=0`` requests: one per available CPU."""
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``jobs`` knob: 0 means "all CPUs", floor at 1."""
    if jobs == 0:
        return default_jobs()
    return max(1, jobs)


def run_tasks(fn: Callable[[T], R], tasks: Sequence[T], *,
              jobs: int = 1,
              on_result: Callable[[int, R], None] | None = None) -> list[R]:
    """``[fn(t) for t in tasks]``, fanned across ``jobs`` processes.

    Results come back in task order. ``fn`` and every task must be
    picklable (module-level function, plain-data arguments). With
    ``jobs<=1``, a single task, or an unusable multiprocessing platform,
    runs everything in-process.

    ``on_result(task_index, result)`` fires in the parent as each task
    finishes, in *completion* order — the sweep harness uses it for
    progress heartbeats while slower workers are still running.
    """
    jobs = resolve_jobs(jobs)
    tasks = list(tasks)

    def _serial() -> list[R]:
        out = []
        for i, t in enumerate(tasks):
            r = fn(t)
            if on_result is not None:
                on_result(i, r)
            out.append(r)
        return out

    if jobs <= 1 or len(tasks) <= 1:
        return _serial()
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            futures = [pool.submit(fn, t) for t in tasks]
            if on_result is not None:
                index = {f: i for i, f in enumerate(futures)}
                for f in as_completed(futures):
                    on_result(index[f], f.result())
            return [f.result() for f in futures]
    except (OSError, PermissionError, NotImplementedError):
        # no fork/semaphores available (restricted sandbox): run serially
        return _serial()
