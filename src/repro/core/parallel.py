"""Process-pool fan-out for trace generation.

A paper sweep re-times cheaply (the batch engine) but still has to
*generate* one trace per (kernel, implementation) pair — functional
execution of the kernel through the RVV intrinsics layer, the expensive
stage of the pipeline. Those generations are independent, so the sweep
harness fans them out across worker processes.

Workers receive (kernel-name, workload, knobs) task tuples, rebuild the
spec from the :data:`repro.kernels.KERNELS` registry, and return only the
finished :class:`repro.core.measurements.Measurement` rows — traces never
cross the process boundary (they are large; measurements are tiny).

The worker pool is **persistent**: the first parallel ``run_tasks`` call
spawns it, and later calls with the same shape (worker count, initializer)
reuse the same processes. A figure suite — latency sweep, then bandwidth
sweep, then attribution ladders over the same kernels — therefore pays
interpreter start-up and module import once, and per-worker caches
installed by the ``initializer`` (e.g. the sweep harness's loaded-trace
memo, :func:`repro.core.sweeps._sweep_worker_init`) stay warm across
figures. ``shutdown_pool`` tears it down explicitly; it is also
registered with :mod:`atexit`.

``run_tasks`` degrades gracefully: if the platform cannot spawn worker
processes (sandboxes without fork/semaphores) or the pool dies mid-run
(a worker was OOM-killed), it rebuilds the pool once and, failing that,
falls back to in-process execution so ``jobs=N`` is always safe to
request.
"""

from __future__ import annotations

import atexit
import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Any, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: runtime-sanitizer hook: a ``repro.lint.sanitize.ShadowTracker`` when
#: ``REPRO_SANITIZE=1`` (installed by repro.core.shm's import-time
#: trigger), else ``None``
_sanitizer: Any = None


def default_jobs() -> int:
    """Worker count for ``jobs=0`` requests: one per available CPU."""
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``jobs`` knob: 0 means "all CPUs", floor at 1."""
    if jobs == 0:
        return default_jobs()
    return max(1, jobs)


#: the one live pool, as (shape key, executor); replaced when a call asks
#: for a different shape, torn down at interpreter exit
_pool: tuple[tuple, ProcessPoolExecutor] | None = None

#: pid that built (or last replaced) ``_pool`` — a forked child inherits
#: the handle but must never use it: the queues belong to the parent
_pool_pid: int = os.getpid()


def _get_pool(workers: int, initializer: Callable[..., None] | None,
              initargs: tuple) -> ProcessPoolExecutor:
    global _pool, _pool_pid
    key = (workers, initializer, initargs)
    if _pool is not None and _pool_pid != os.getpid():
        # foreign pool: this process forked after the parent built the
        # pool. Submitting here would race the parent's own dispatch,
        # and shutting it down would kill the parent's workers — so the
        # handle is abandoned (never shut down) and a fresh pool built.
        if _sanitizer is not None:
            _sanitizer.note_foreign_pool(_pool_pid)
        _pool = None
    if _pool is not None:
        if _pool[0] == key:
            return _pool[1]
        # wait for the old workers to exit before the new shape comes up:
        # an abandoned worker still draining a task can race state the
        # caller tears down right after this call returns — concretely, a
        # shared-memory segment the sweep parent unlinks while the orphan
        # is attaching it (see repro.core.shm)
        _pool[1].shutdown(wait=True, cancel_futures=True)
        _pool = None
    pool = ProcessPoolExecutor(max_workers=workers,
                               initializer=initializer,
                               initargs=initargs)
    _pool = (key, pool)
    _pool_pid = os.getpid()
    return pool


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (no-op if none is live)."""
    global _pool
    if _pool is not None:
        pool = _pool[1]
        _pool = None
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pool)


def run_tasks(fn: Callable[[T], R], tasks: Sequence[T], *,
              jobs: int = 1,
              on_result: Callable[[int, R], None] | None = None,
              initializer: Callable[..., None] | None = None,
              initargs: tuple = ()) -> list[R]:
    """``[fn(t) for t in tasks]``, fanned across ``jobs`` processes.

    Results come back in task order. ``fn`` and every task must be
    picklable (module-level function, plain-data arguments). With
    ``jobs<=1``, a single task, or an unusable multiprocessing platform,
    runs everything in-process.

    ``on_result(task_index, result)`` fires in the parent as each task
    finishes, in *completion* order — the sweep harness uses it for
    progress heartbeats while slower workers are still running.

    ``initializer(*initargs)`` runs once in each worker process when the
    pool comes up (and in-process before a serial run), so it must be
    idempotent. Calls with the same ``(jobs, initializer, initargs)``
    shape reuse the persistent pool — and with it whatever per-process
    state the initializer set up.
    """
    jobs = resolve_jobs(jobs)
    tasks = list(tasks)

    # on_result must fire exactly once per task even when the pool dies
    # mid-run and tasks are re-dispatched: without the dedup, every task
    # that completed before the crash reported again on the retry
    # (duplicate heartbeats, double-merged worker metrics)
    reported: set[int] = set()

    def _report(i: int, r: R) -> None:
        if on_result is not None and i not in reported:
            reported.add(i)
            on_result(i, r)

    def _serial() -> list[R]:
        if initializer is not None:
            initializer(*initargs)
        out = []
        for i, t in enumerate(tasks):
            r = fn(t)
            _report(i, r)
            out.append(r)
        return out

    if jobs <= 1 or len(tasks) <= 1:
        return _serial()

    def _dispatch() -> list[R]:
        pool = _get_pool(jobs, initializer, initargs)
        trk = _sanitizer
        bid = trk.note_batch_begin(jobs, len(tasks)) if trk is not None \
            else 0
        completed = 0
        status = "ok"
        try:
            futures = [pool.submit(fn, t) for t in tasks]
            index = {f: i for i, f in enumerate(futures)}
            for f in as_completed(futures):
                _report(index[f], f.result())
                completed += 1
            return [f.result() for f in futures]
        except BrokenProcessPool:
            status = "broken"
            raise
        except BaseException:
            status = "error"
            raise
        finally:
            if trk is not None:
                trk.note_batch_end(bid, status, completed, len(tasks))

    try:
        try:
            return _dispatch()
        except BrokenProcessPool:
            # a worker died mid-run; rebuild the pool and retry once
            _note_pool_event("parallel.pool_rebuilt", jobs=jobs,
                             tasks=len(tasks))
            shutdown_pool()
            return _dispatch()
    except (OSError, PermissionError, NotImplementedError,
            BrokenProcessPool):
        # no fork/semaphores available (restricted sandbox) or the pool
        # died twice: run serially
        _note_pool_event("parallel.serial_fallback", jobs=jobs,
                         tasks=len(tasks))
        shutdown_pool()
        return _serial()


def _note_pool_event(name: str, **attrs: Any) -> None:
    """Surface a pool failure: metrics counter + structured run-log event
    (replacing what used to be a silent rebuild)."""
    from repro.obs.metrics import get_metrics
    from repro.obs.runlog import get_runlog

    get_metrics().counter(name).inc()
    get_runlog().event(name, level="warn", **attrs)
