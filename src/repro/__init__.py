"""repro — a trace-driven reproduction of *Short Reasons for Long Vectors in
HPC CPUs: A Study Based on RISC-V* (Vizcaino et al., SC'23).

The package simulates the paper's FPGA-SDV — a RISC-V scalar core with a
decoupled RVV v0.7.1 vector unit (up to 256 doubles per register), a 2x2
mesh NoC, a 4-bank shared L2/home node, and DDR memory behind a runtime
Latency Controller and Bandwidth Limiter — and re-runs the paper's study:
four non-dense kernels (SpMV, BFS, PageRank, FFT) in scalar and vector form
swept over vector length, extra memory latency, and memory bandwidth.

Quickstart::

    from repro import KERNELS, get_scale, latency_sweep

    scale = get_scale("ci")
    spec = KERNELS["spmv"]
    workload = spec.prepare(scale, seed=7)
    result = latency_sweep(spec, workload, vls=(8, 64, 256))
    print(result.to_csv())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.config import (
    CoreConfig,
    L2Config,
    MemConfig,
    NocConfig,
    SdvConfig,
    VpuConfig,
    bw_fraction_for_bytes_per_cycle,
)
from repro.core import (
    DEFAULT_BANDWIDTHS,
    DEFAULT_LATENCIES,
    DEFAULT_VLS,
    Measurement,
    SweepResult,
    bandwidth_sweep,
    figure3_series,
    figure4_table,
    figure5_series,
    headline_numbers,
    latency_sweep,
    plateau_bandwidth,
    render_figure3,
    render_figure4,
    render_figure5,
    run_implementation,
    vl_sweep,
)
from repro.core.suite import SuiteResult, render_report, run_suite
from repro.engine import (
    CycleReport,
    LoweredTrace,
    lower_trace,
    simulate_batch,
    simulate_events,
    simulate_events_fast,
    simulate_fast,
)
from repro.engine.noise import MeasuredValue, NoiseModel, measure
from repro.kernels.micro import MachineProbe, characterize_machine
from repro.memory import ReuseProfile, profile_trace
from repro.errors import ReproError
from repro.kernels import KERNELS, KernelOutput, KernelSpec
from repro.soc import FpgaSdv, Session
from repro.workloads import Scale, get_scale

__version__ = "1.0.0"

__all__ = [
    "CoreConfig",
    "L2Config",
    "MemConfig",
    "NocConfig",
    "SdvConfig",
    "VpuConfig",
    "bw_fraction_for_bytes_per_cycle",
    "DEFAULT_BANDWIDTHS",
    "DEFAULT_LATENCIES",
    "DEFAULT_VLS",
    "Measurement",
    "SweepResult",
    "bandwidth_sweep",
    "latency_sweep",
    "vl_sweep",
    "run_implementation",
    "figure3_series",
    "figure4_table",
    "figure5_series",
    "headline_numbers",
    "plateau_bandwidth",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "CycleReport",
    "LoweredTrace",
    "lower_trace",
    "simulate_batch",
    "simulate_events",
    "simulate_events_fast",
    "simulate_fast",
    "SuiteResult",
    "render_report",
    "run_suite",
    "MeasuredValue",
    "NoiseModel",
    "measure",
    "MachineProbe",
    "characterize_machine",
    "ReuseProfile",
    "profile_trace",
    "ReproError",
    "KERNELS",
    "KernelOutput",
    "KernelSpec",
    "FpgaSdv",
    "Session",
    "Scale",
    "get_scale",
    "__version__",
]
