"""Plain-text table rendering, including Figure-4-style heat tables.

The paper's Figure 4 shows, per kernel, a table of slowdowns (rows = extra
latency, columns = implementation) with a green→red color gradient. We render
the same structure as monospaced text; when ``color=True`` ANSI background
colors approximate the gradient for terminals.
"""

from __future__ import annotations

from collections.abc import Sequence

_RESET = "\x1b[0m"


class TextTable:
    """Minimal monospaced table builder.

    >>> t = TextTable(["a", "b"])
    >>> t.add_row(["1", "22"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    a | b
    --+---
    1 | 22
    """

    def __init__(self, header: Sequence[str]) -> None:
        self.header = [str(h) for h in header]
        self.rows: list[list[str]] = []

    def add_row(self, row: Sequence[object]) -> None:
        cells = [str(c) for c in row]
        if len(cells) != len(self.header):
            raise ValueError(
                f"row has {len(cells)} cells, header has {len(self.header)}"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(h) for h in self.header]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
        sep = "-+-".join("-" * w for w in widths)
        lines = [fmt(self.header), sep]
        lines.extend(fmt(r) for r in self.rows)
        return "\n".join(lines)


def _gradient_sgr(frac: float) -> str:
    """ANSI 256-color background from green (0.0) to red (1.0)."""
    frac = min(1.0, max(0.0, frac))
    # 6x6x6 color cube: index = 16 + 36*r + 6*g + b
    r = round(5 * frac)
    g = round(5 * (1.0 - frac))
    idx = 16 + 36 * r + 6 * g
    return f"\x1b[48;5;{idx}m\x1b[30m"


def heat_cell(value: float, vmin: float, vmax: float, *, color: bool = False,
              width: int = 7, fmt: str = "{:.2f}") -> str:
    """Render one heat-table cell, optionally with an ANSI gradient background.

    ``vmin``/``vmax`` define the green/red ends of the gradient *for this
    table* (the paper normalizes the gradient per table).
    """
    text = fmt.format(value).rjust(width)
    if not color:
        return text
    if vmax <= vmin:
        frac = 0.0
    else:
        frac = (value - vmin) / (vmax - vmin)
    return f"{_gradient_sgr(frac)}{text}{_RESET}"


def render_heat_table(
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    values: Sequence[Sequence[float]],
    *,
    title: str = "",
    color: bool = False,
    fmt: str = "{:.2f}",
) -> str:
    """Render a Figure-4-style table: rows × columns of float cells.

    The gradient is scaled to the min/max of the whole table, matching the
    paper's per-table color coding.
    """
    flat = [v for row in values for v in row]
    if not flat:
        raise ValueError("heat table needs at least one value")
    vmin, vmax = min(flat), max(flat)
    col_strs = [str(c) for c in col_labels]
    width = max(7, *(len(c) for c in col_strs))
    row_w = max((len(str(r)) for r in row_labels), default=4)
    row_w = max(row_w, 4)

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(" " * row_w + " " + " ".join(c.rjust(width) for c in col_strs))
    for label, row in zip(row_labels, values):
        if len(row) != len(col_strs):
            raise ValueError("ragged heat table row")
        cells = " ".join(
            heat_cell(v, vmin, vmax, color=color, width=width, fmt=fmt)
            for v in row
        )
        lines.append(str(label).rjust(row_w) + " " + cells)
    return "\n".join(lines)
