"""Shared utilities: units, deterministic RNG helpers, text tables, math."""

from repro.util.units import (
    KiB,
    MiB,
    GiB,
    bytes_per_cycle,
    cycles_to_seconds,
    fmt_bytes,
    fmt_cycles,
)
from repro.util.prng import make_rng, derive_seed
from repro.util.tables import TextTable, heat_cell, render_heat_table
from repro.util.mathx import ceil_div, is_pow2, log2_int, next_pow2

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "bytes_per_cycle",
    "cycles_to_seconds",
    "fmt_bytes",
    "fmt_cycles",
    "make_rng",
    "derive_seed",
    "TextTable",
    "heat_cell",
    "render_heat_table",
    "ceil_div",
    "is_pow2",
    "log2_int",
    "next_pow2",
]
