"""Small integer-math helpers used across the timing models."""

from __future__ import annotations


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``.

    >>> ceil_div(7, 4)
    2
    >>> ceil_div(8, 4)
    2
    """
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"dividend must be non-negative, got {a}")
    return -(-a // b)


def is_pow2(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_int(n: int) -> int:
    """Exact log2 of a power of two; raises for anything else.

    >>> log2_int(64)
    6
    """
    if not is_pow2(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def next_pow2(n: int) -> int:
    """Smallest power of two >= n (n >= 1).

    >>> next_pow2(5)
    8
    >>> next_pow2(8)
    8
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << (n - 1).bit_length()
