"""Deterministic random-number helpers.

All stochastic pieces of the library (workload generators, trace shuffling)
take explicit seeds so every experiment is reproducible. ``derive_seed``
deterministically mixes a parent seed with a string label so sub-components
get independent streams without manual bookkeeping.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from ``seed`` and any number of labels.

    Stable across processes and Python versions (uses SHA-256, not ``hash``).

    >>> derive_seed(42, "graph") == derive_seed(42, "graph")
    True
    >>> derive_seed(42, "graph") != derive_seed(42, "matrix")
    True
    """
    h = hashlib.sha256()
    h.update(int(seed).to_bytes(16, "little", signed=True))
    for label in labels:
        h.update(repr(label).encode("utf-8"))
        h.update(b"\x00")
    return int.from_bytes(h.digest()[:8], "little")


def make_rng(seed: int | None, *labels: object) -> np.random.Generator:
    """Create a NumPy Generator; if labels are given, derive a child seed."""
    if seed is None:
        return np.random.default_rng()
    if labels:
        seed = derive_seed(seed, *labels)
    return np.random.default_rng(seed)
