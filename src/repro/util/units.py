"""Unit constants and formatting helpers used throughout the simulator.

The FPGA-SDV in the paper runs at 50 MHz; cycle counts are the primary unit
of time in the whole library (the paper reports cycle counts read from a
hardware counter). Helpers here convert cycles to wall-clock seconds for a
given frequency and pretty-print byte/cycle quantities for reports.
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

#: Clock frequency of the emulated system in the paper (Section 2.2).
FPGA_SDV_FREQ_HZ: int = 50_000_000

#: Width of one cache line / memory transaction in bytes (64 B, the peak
#: bandwidth in the paper is expressed as 64 Bytes/cycle = one line per cycle).
LINE_BYTES: int = 64


def cycles_to_seconds(cycles: float, freq_hz: float = FPGA_SDV_FREQ_HZ) -> float:
    """Convert a cycle count to seconds at ``freq_hz``.

    >>> cycles_to_seconds(50_000_000)
    1.0
    """
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return cycles / freq_hz


def bytes_per_cycle(total_bytes: float, cycles: float) -> float:
    """Achieved bandwidth in bytes/cycle; 0 when no cycles elapsed."""
    if cycles <= 0:
        return 0.0
    return total_bytes / cycles


def fmt_bytes(n: float) -> str:
    """Human-readable byte count: ``fmt_bytes(2*1024*1024) == '2.0 MiB'``."""
    n = float(n)
    for unit, size in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= size:
            return f"{n / size:.1f} {unit}"
    return f"{n:.0f} B"


def fmt_cycles(n: float) -> str:
    """Human-readable cycle count with thousands separators."""
    if abs(n) >= 1e6:
        return f"{n / 1e6:.2f} Mcyc"
    if abs(n) >= 1e3:
        return f"{n / 1e3:.1f} kcyc"
    return f"{n:.0f} cyc"
