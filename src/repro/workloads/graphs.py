"""Graph workloads for BFS and PageRank.

The paper evaluates both graph kernels on a 2^15-node graph (Section 3.1);
the underlying thesis uses synthetic scale-free inputs. :func:`rmat_graph`
generates the standard R-MAT/Kronecker distribution (Graph500 parameters by
default), deduplicated, with a :class:`CsrGraph` container holding both the
out-adjacency and the in-adjacency (PageRank pulls over incoming edges).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import WorkloadError
from repro.util.mathx import is_pow2, log2_int
from repro.util.prng import make_rng


@dataclass(frozen=True)
class CsrGraph:
    """Directed graph in CSR form (out-adjacency) with its transpose."""

    n: int
    indptr: np.ndarray       # int64[n+1]
    indices: np.ndarray      # int64[m], sorted within each row
    t_indptr: np.ndarray     # transpose (in-adjacency)
    t_indices: np.ndarray

    def __post_init__(self) -> None:
        if self.indptr.shape != (self.n + 1,):
            raise WorkloadError("indptr shape mismatch")
        if self.t_indptr.shape != (self.n + 1,):
            raise WorkloadError("t_indptr shape mismatch")
        if self.indptr[-1] != self.indices.shape[0]:
            raise WorkloadError("indptr does not terminate at nnz")
        if self.t_indptr[-1] != self.t_indices.shape[0]:
            raise WorkloadError("t_indptr does not terminate at nnz")

    @property
    def m(self) -> int:
        """Directed edge count."""
        return int(self.indices.shape[0])

    @property
    def out_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def in_degrees(self) -> np.ndarray:
        return np.diff(self.t_indptr)

    def neighbors(self, u: int) -> np.ndarray:
        return self.indices[self.indptr[u]: self.indptr[u + 1]]


def _edges_to_csr(n: int, src: np.ndarray, dst: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    # dedupe parallel edges
    keep = np.ones(src.shape[0], dtype=bool)
    keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
    src, dst = src[keep], dst[keep]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, dst.astype(np.int64)


def rmat_graph(n: int, *, edge_factor: int = 8, seed: int = 11,
               a: float = 0.57, b: float = 0.19, c: float = 0.19,
               symmetric: bool = True) -> CsrGraph:
    """R-MAT graph with ``n`` nodes (power of two) and ``n*edge_factor`` edges.

    Default (a,b,c,d) are the Graph500 parameters. ``symmetric=True`` adds
    each edge in both directions (BFS reaches the bulk of the graph, as a
    benchmark input should). Self-loops are dropped; parallel edges
    deduplicated, so the final edge count is slightly below the target.
    """
    if not is_pow2(n):
        raise WorkloadError(f"R-MAT size must be a power of two, got {n}")
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c) <= 0:
        raise WorkloadError(f"invalid R-MAT probabilities a={a} b={b} c={c}")
    rng = make_rng(seed, "rmat", n, edge_factor)
    scale = log2_int(n)
    m = n * edge_factor

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        # one quadrant choice per edge per recursion level:
        #   [a b]   a: (0,0)  b: (0,1)
        #   [c d]   c: (1,0)  d: (1,1)
        r = rng.random(m)
        src_bit = (r >= a + b).astype(np.int64)          # quadrants c, d
        dst_bit = np.where(
            src_bit.astype(bool),
            (r >= a + b + c).astype(np.int64),           # d quadrant
            ((r >= a) & (r < a + b)).astype(np.int64),   # b quadrant
        )
        src |= src_bit << level
        dst |= dst_bit << level

    # permute node ids so degree does not correlate with index
    perm = rng.permutation(n)
    src, dst = perm[src], perm[dst]
    loops = src == dst
    src, dst = src[~loops], dst[~loops]
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])

    indptr, indices = _edges_to_csr(n, src, dst)
    t_indptr, t_indices = _edges_to_csr(
        n, indices, np.repeat(np.arange(n), np.diff(indptr))
    )
    return CsrGraph(n=n, indptr=indptr, indices=indices,
                    t_indptr=t_indptr, t_indices=t_indices)


def grid_graph(side: int) -> CsrGraph:
    """4-neighbour 2-D grid of ``side x side`` nodes (symmetric).

    The antithesis of R-MAT: huge diameter (~2*side levels), tiny uniform
    degree — it stresses the per-level costs of level-synchronous BFS
    instead of the edge throughput.
    """
    if side < 2:
        raise WorkloadError(f"grid side must be >= 2, got {side}")
    n = side * side
    idx = np.arange(n).reshape(side, side)
    src_parts = []
    dst_parts = []
    # horizontal and vertical edges, both directions
    src_parts.append(idx[:, :-1].ravel()); dst_parts.append(idx[:, 1:].ravel())
    src_parts.append(idx[:, 1:].ravel()); dst_parts.append(idx[:, :-1].ravel())
    src_parts.append(idx[:-1, :].ravel()); dst_parts.append(idx[1:, :].ravel())
    src_parts.append(idx[1:, :].ravel()); dst_parts.append(idx[:-1, :].ravel())
    src = np.concatenate(src_parts).astype(np.int64)
    dst = np.concatenate(dst_parts).astype(np.int64)
    indptr, indices = _edges_to_csr(n, src, dst)
    t_indptr, t_indices = _edges_to_csr(
        n, indices, np.repeat(np.arange(n), np.diff(indptr))
    )
    return CsrGraph(n=n, indptr=indptr, indices=indices,
                    t_indptr=t_indptr, t_indices=t_indices)


def graph_to_networkx(g: CsrGraph) -> nx.DiGraph:
    """Convert to networkx for reference results in tests."""
    G = nx.DiGraph()
    G.add_nodes_from(range(g.n))
    src = np.repeat(np.arange(g.n), np.diff(g.indptr))
    G.add_edges_from(zip(src.tolist(), g.indices.tolist()))
    return G
