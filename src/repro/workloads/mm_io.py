"""MatrixMarket I/O.

The paper's SpMV input (cage10) ships as a ``.mtx`` file from SuiteSparse.
scipy has ``mmread``, but we implement the coordinate format directly so
the loader (a) has no hidden format surprises in tests and (b) documents
exactly which subset we accept: ``matrix coordinate real/integer/pattern
general/symmetric``.
"""

from __future__ import annotations

import os

import numpy as np
import scipy.sparse as sp

from repro.errors import WorkloadError


def read_matrix_market(path: str | os.PathLike) -> sp.csr_matrix:
    """Read a MatrixMarket coordinate file into CSR."""
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
        parts = header.strip().split()
        if len(parts) < 5 or parts[0] != "%%MatrixMarket":
            raise WorkloadError(f"not a MatrixMarket file: {header!r}")
        _, obj, fmt, field, symmetry = parts[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise WorkloadError(
                f"only 'matrix coordinate' supported, got {obj} {fmt}"
            )
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in ("real", "integer", "pattern"):
            raise WorkloadError(f"unsupported field '{field}'")
        if symmetry not in ("general", "symmetric"):
            raise WorkloadError(f"unsupported symmetry '{symmetry}'")

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        try:
            nrows, ncols, nnz = (int(x) for x in line.split())
        except ValueError as exc:
            raise WorkloadError(f"bad size line: {line!r}") from exc

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=np.float64)
        for k in range(nnz):
            entry = fh.readline().split()
            if len(entry) < (2 if field == "pattern" else 3):
                raise WorkloadError(f"truncated entry at nonzero {k}")
            rows[k] = int(entry[0]) - 1
            cols[k] = int(entry[1]) - 1
            if field != "pattern":
                vals[k] = float(entry[2])

    return _build_csr(nrows, ncols, rows, cols, vals, symmetry)


def _build_csr(nrows: int, ncols: int, rows: np.ndarray, cols: np.ndarray,
               vals: np.ndarray, symmetry: str) -> sp.csr_matrix:
    if symmetry == "symmetric":
        off = rows != cols
        rows2 = np.concatenate([rows, cols[off]])
        cols2 = np.concatenate([cols, rows[off]])
        vals2 = np.concatenate([vals, vals[off]])
    else:
        rows2, cols2, vals2 = rows, cols, vals
    if rows2.size and (rows2.min() < 0 or rows2.max() >= nrows
                       or cols2.min() < 0 or cols2.max() >= ncols):
        raise WorkloadError("index out of declared matrix bounds")
    mat = sp.csr_matrix((vals2, (rows2, cols2)), shape=(nrows, ncols))
    mat.sort_indices()
    return mat


def write_matrix_market(path: str | os.PathLike, mat: sp.spmatrix,
                        *, comment: str = "") -> None:
    """Write a CSR/COO matrix as 'matrix coordinate real general'."""
    coo = mat.tocoo()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}\n")
        for r, c, v in zip(coo.row, coo.col, coo.data):
            fh.write(f"{r + 1} {c + 1} {v:.17g}\n")
