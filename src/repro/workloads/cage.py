"""Synthetic cage10-like sparse matrices.

The paper's SpMV input is `vanHeukelum/cage10` from the SuiteSparse
collection (DNA electrophoresis): 11397x11397, 150645 nonzeros, ~13.2
nonzeros/row with row degrees between 5 and 33, a strong near-diagonal
band plus medium-range couplings, and a full diagonal. We cannot download
it offline, so :func:`cage10_like` synthesizes a matrix matched to those
statistics; SpMV behaviour (the paper's concern) is governed by the
row-length distribution and the column locality, both of which are
reproduced. When the real ``cage10.mtx`` is available, load it with
:func:`repro.workloads.mm_io.read_matrix_market` instead — every kernel
accepts any CSR matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import WorkloadError
from repro.util.prng import make_rng


@dataclass(frozen=True)
class CageStats:
    """Published statistics of a cage-family matrix."""

    n: int
    nnz: int
    min_row: int
    max_row: int

    @property
    def avg_row(self) -> float:
        return self.nnz / self.n


#: vanHeukelum/cage10, from the SuiteSparse collection page.
CAGE10_STATS = CageStats(n=11397, nnz=150645, min_row=5, max_row=33)


def cage_like(stats: CageStats, *, seed: int = 7,
              band_fraction: float = 0.7,
              bandwidth_rows: int = 600) -> sp.csr_matrix:
    """Synthesize a CSR matrix matched to ``stats``.

    Structure: every row has its diagonal entry; the remaining degree is
    drawn from a clipped normal matched to the row-degree range; a
    ``band_fraction`` of off-diagonals fall within ``bandwidth_rows`` of the
    diagonal (cage matrices couple neighbouring DNA-polymer states), the
    rest are uniform long-range entries. Values are nonsymmetric random
    weights roughly row-normalized, like a transition matrix.
    """
    if stats.n < 4 or stats.nnz < stats.n:
        raise WorkloadError(f"degenerate cage stats: {stats}")
    rng = make_rng(seed, "cage", stats.n, stats.nnz)
    n = stats.n

    target_offdiag = stats.nnz - n  # diagonal is full
    mean_deg = target_offdiag / n
    sigma = (stats.max_row - stats.min_row) / 6.0
    deg = rng.normal(mean_deg, sigma, size=n)
    deg = np.clip(np.rint(deg), stats.min_row - 1, stats.max_row - 1)
    deg = deg.astype(np.int64)
    # adjust total to hit nnz exactly
    diff = int(target_offdiag - deg.sum())
    while diff != 0:
        idx = rng.integers(0, n, size=abs(diff))
        if diff > 0:
            mask = deg[idx] < stats.max_row - 1
            deg[idx[mask]] += 1
            diff -= int(mask.sum())
        else:
            mask = deg[idx] > stats.min_row - 1
            deg[idx[mask]] -= 1
            diff += int(mask.sum())

    rows_out = []
    cols_out = []
    band = max(2, bandwidth_rows)
    for i in range(n):
        d = int(deg[i])
        n_band = int(round(d * band_fraction))
        lo = max(0, i - band)
        hi = min(n, i + band + 1)
        near = rng.integers(lo, hi, size=n_band)
        far = rng.integers(0, n, size=d - n_band)
        cols = np.concatenate([near, far, [i]])
        cols = np.unique(cols)
        rows_out.append(np.full(cols.shape[0], i, dtype=np.int64))
        cols_out.append(cols)

    rows = np.concatenate(rows_out)
    cols = np.concatenate(cols_out)
    vals = rng.uniform(0.01, 1.0, size=rows.shape[0])
    mat = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    mat.sort_indices()
    return mat


def cage10_like(*, seed: int = 7) -> sp.csr_matrix:
    """The default SpMV input: synthetic stand-in for cage10."""
    return cage_like(CAGE10_STATS, seed=seed)


def scaled_cage_like(n: int, *, seed: int = 7) -> sp.csr_matrix:
    """A smaller matrix with cage10's row-degree *profile* (for CI runs)."""
    if n < 64:
        raise WorkloadError(f"scaled cage matrix needs n >= 64, got {n}")
    nnz = int(round(n * CAGE10_STATS.avg_row))
    stats = CageStats(n=n, nnz=nnz, min_row=CAGE10_STATS.min_row,
                      max_row=CAGE10_STATS.max_row)
    return cage_like(stats, seed=seed,
                     bandwidth_rows=max(8, int(600 * n / CAGE10_STATS.n)))
