"""Workload scale presets.

The FPGA in the paper runs at 50 MHz; we run a Python interpreter, so the
benchmark harness supports two parameter sets:

* ``paper`` — the sizes from Section 3.1: cage10-scale SpMV (11397 rows,
  ~150k nnz), a 2^15-node graph for BFS/PageRank, a 2048-point FFT;
* ``ci`` — reduced sizes with the same structure, used by the test suite
  and the quick benchmark mode.

PageRank's *timed* iteration count is a harness parameter (the paper does
not state one); time scales linearly in it, so normalized results
(Figures 4 and 5 are all normalized) are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Scale:
    """One workload parameter set."""

    name: str
    spmv_n: int | None        # None = exact cage10-like stats
    graph_nodes: int
    graph_edge_factor: int
    fft_n: int
    pagerank_iters: int


_SCALES = {
    "paper": Scale(name="paper", spmv_n=None, graph_nodes=2 ** 15,
                   graph_edge_factor=8, fft_n=2048, pagerank_iters=2),
    "ci": Scale(name="ci", spmv_n=1536, graph_nodes=2 ** 11,
                graph_edge_factor=8, fft_n=512, pagerank_iters=2),
    "smoke": Scale(name="smoke", spmv_n=384, graph_nodes=2 ** 8,
                   graph_edge_factor=4, fft_n=128, pagerank_iters=1),
}


def get_scale(name: str) -> Scale:
    """Look up a scale preset by name ('paper', 'ci', 'smoke')."""
    try:
        return _SCALES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown scale '{name}' (choose from {sorted(_SCALES)})"
        ) from None
