"""Workload generators and loaders for the four evaluated kernels.

* :mod:`cage` — synthetic sparse matrices matched to the cage10 statistics
  used for SpMV in the paper (plus a MatrixMarket loader for the real file);
* :mod:`graphs` — R-MAT/Kronecker graphs in CSR form for BFS and PageRank
  (the paper uses a 2^15-node graph);
* :mod:`signals` — input signals for the 2048-point FFT;
* :mod:`mm_io` — MatrixMarket reading/writing (offline-friendly).

Each generator takes an explicit seed; the ``scale`` helpers give the
paper-scale and CI-scale parameter sets used by benches and tests.
"""

from repro.workloads.cage import cage10_like, cage_like, CAGE10_STATS
from repro.workloads.graphs import CsrGraph, grid_graph, rmat_graph, graph_to_networkx
from repro.workloads.signals import make_signal
from repro.workloads.mm_io import read_matrix_market, write_matrix_market
from repro.workloads.scales import Scale, get_scale

__all__ = [
    "cage10_like",
    "cage_like",
    "CAGE10_STATS",
    "CsrGraph",
    "grid_graph",
    "rmat_graph",
    "graph_to_networkx",
    "make_signal",
    "read_matrix_market",
    "write_matrix_market",
    "Scale",
    "get_scale",
]
