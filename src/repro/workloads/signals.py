"""Input signals for the FFT kernel.

The paper runs a 2048-point FFT (Section 3.1). Inputs here are complex
signals stored as separate real/imaginary float64 arrays — the layout the
vectorized kernel uses (structure-of-arrays keeps every vector access unit
stride).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.util.mathx import is_pow2
from repro.util.prng import make_rng


def make_signal(n: int = 2048, *, kind: str = "tones", seed: int = 3
                ) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(re, im)`` float64 arrays of length ``n`` (power of two).

    Kinds:

    * ``"tones"`` — a few deterministic complex exponentials + mild noise
      (a realistic signal-processing input with a recognizable spectrum);
    * ``"noise"`` — white complex noise;
    * ``"impulse"`` — unit impulse (FFT is the all-ones vector; handy for
      eyeballing correctness).
    """
    if not is_pow2(n):
        raise WorkloadError(f"FFT size must be a power of two, got {n}")
    rng = make_rng(seed, "signal", kind, n)
    t = np.arange(n, dtype=np.float64)
    if kind == "tones":
        sig = (
            1.00 * np.exp(2j * np.pi * 5 * t / n)
            + 0.50 * np.exp(2j * np.pi * 37 * t / n)
            + 0.25 * np.exp(-2j * np.pi * 101 * t / n)
        )
        sig += 0.01 * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
    elif kind == "noise":
        sig = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    elif kind == "impulse":
        sig = np.zeros(n, dtype=np.complex128)
        sig[0] = 1.0
    else:
        raise WorkloadError(f"unknown signal kind '{kind}'")
    return np.ascontiguousarray(sig.real), np.ascontiguousarray(sig.imag)
